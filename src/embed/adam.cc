#include "embed/adam.h"

#include <cmath>

#include "common/logging.h"

namespace kpef {

Adam::Adam(size_t num_params, AdamConfig config, const DistanceKernel* kernel)
    : config_(config),
      kernel_(kernel != nullptr ? kernel : &ActiveKernel()),
      m_(num_params, 0.0f),
      v_(num_params, 0.0f) {}

float Adam::StepSize(int64_t t) const {
  return static_cast<float>(
      config_.learning_rate *
      std::sqrt(1.0 - std::pow(config_.beta2, static_cast<double>(t))) /
      (1.0 - std::pow(config_.beta1, static_cast<double>(t))));
}

void Adam::UpdateSlice(float* params, const float* grads, size_t count,
                       size_t state_offset) {
  const int64_t t = step();
  KPEF_CHECK(t > 0) << "call BeginStep() before updates";
  KPEF_CHECK(state_offset + count <= m_.size());
  kernel_->adam_update(params, grads, m_.data() + state_offset,
                       v_.data() + state_offset,
                       static_cast<float>(config_.beta1),
                       static_cast<float>(config_.beta2), StepSize(t),
                       static_cast<float>(config_.epsilon), count);
}

void Adam::UpdateDense(std::span<float> params, std::span<const float> grads,
                       size_t offset) {
  KPEF_CHECK(params.size() == grads.size());
  UpdateSlice(params.data(), grads.data(), grads.size(), offset);
}

void Adam::UpdateRow(Matrix& params, size_t row, std::span<const float> grads,
                     size_t block_offset) {
  auto row_span = params.Row(row);
  KPEF_CHECK(row_span.size() == grads.size());
  UpdateSlice(row_span.data(), grads.data(), grads.size(),
              block_offset + row * params.cols());
}

}  // namespace kpef

#include "embed/adam.h"

#include <cmath>

#include "common/logging.h"

namespace kpef {

Adam::Adam(size_t num_params, AdamConfig config)
    : config_(config), m_(num_params, 0.0f), v_(num_params, 0.0f) {}

void Adam::UpdateSlice(float* params, const float* grads, size_t count,
                       size_t state_offset) {
  KPEF_CHECK(step_ > 0) << "call BeginStep() before updates";
  KPEF_CHECK(state_offset + count <= m_.size());
  const double b1 = config_.beta1;
  const double b2 = config_.beta2;
  // Bias-corrected step size folded into alpha.
  const double alpha =
      config_.learning_rate *
      std::sqrt(1.0 - std::pow(b2, static_cast<double>(step_))) /
      (1.0 - std::pow(b1, static_cast<double>(step_)));
  float* m = m_.data() + state_offset;
  float* v = v_.data() + state_offset;
  for (size_t i = 0; i < count; ++i) {
    const double g = grads[i];
    m[i] = static_cast<float>(b1 * m[i] + (1.0 - b1) * g);
    v[i] = static_cast<float>(b2 * v[i] + (1.0 - b2) * g * g);
    params[i] -= static_cast<float>(alpha * m[i] /
                                    (std::sqrt(v[i]) + config_.epsilon));
  }
}

void Adam::UpdateDense(std::span<float> params, std::span<const float> grads,
                       size_t offset) {
  KPEF_CHECK(params.size() == grads.size());
  UpdateSlice(params.data(), grads.data(), grads.size(), offset);
}

void Adam::UpdateRow(Matrix& params, size_t row, std::span<const float> grads,
                     size_t block_offset) {
  auto row_span = params.Row(row);
  KPEF_CHECK(row_span.size() == grads.size());
  UpdateSlice(row_span.data(), grads.data(), grads.size(),
              block_offset + row * params.cols());
}

}  // namespace kpef

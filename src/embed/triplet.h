// Training triples and the margin triplet loss of §III-C (Eq. 3).

#ifndef KPEF_EMBED_TRIPLET_H_
#define KPEF_EMBED_TRIPLET_H_

#include <cstdint>
#include <span>
#include <vector>

namespace kpef {

/// One training example <p+, ps, p->: corpus document ids of the positive
/// sample, seed paper, and negative sample.
struct Triple {
  int32_t positive;
  int32_t seed;
  int32_t negative;

  bool operator==(const Triple&) const = default;
};

/// Value and input-gradients of the triplet loss
///   L = max(0, δ(vs, vp) - δ(vs, vn) + margin)
/// with δ the (non-squared) L2 distance, matching the paper.
struct TripletLossResult {
  float loss = 0.0f;
  /// True when the example is inside the margin (gradients non-zero).
  bool active = false;
  std::vector<float> grad_seed;
  std::vector<float> grad_positive;
  std::vector<float> grad_negative;
};

/// Computes the loss and, when active, the gradients with respect to the
/// three encoded vectors. Distances below `epsilon` are clamped to avoid
/// division blow-ups for coincident embeddings.
TripletLossResult ComputeTripletLoss(std::span<const float> seed,
                                     std::span<const float> positive,
                                     std::span<const float> negative,
                                     float margin, float epsilon = 1e-8f);

struct DistanceKernel;

/// Low-allocation variant for the trainer's hot loop: reuses `result`'s
/// gradient buffers (resized only when the example is active; their
/// contents are unspecified when `result.active` is false) and routes
/// the distances and the fused gradient fill through `kernel`. Scalar
/// and AVX2 kernels agree bitwise (embed/vector_ops.h), so the kernel
/// choice only changes speed.
void ComputeTripletLossInto(std::span<const float> seed,
                            std::span<const float> positive,
                            std::span<const float> negative, float margin,
                            float epsilon, const DistanceKernel& kernel,
                            TripletLossResult& result);

}  // namespace kpef

#endif  // KPEF_EMBED_TRIPLET_H_

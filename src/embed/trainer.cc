#include "embed/trainer.h"

#include <algorithm>

#include "common/logging.h"
#include "common/rng.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/pipeline_metrics.h"
#include "obs/trace.h"

namespace kpef {

TrainStats TripletTrainer::Train(const std::vector<Triple>& triples,
                                 const TrainerConfig& config) {
  KPEF_TRACE_SPAN("trainer.train");
  Timer timer;
  TrainStats stats;
  stats.num_triples = triples.size();
  if (triples.empty()) {
    KPEF_LOG(Warning) << "no training triples; encoder left unchanged";
    return stats;
  }

  const size_t d = encoder_->dim();
  const size_t token_params = encoder_->vocab_size() * d;
  const size_t proj_params = d * d;
  // One optimizer state over [tokens | projection | bias].
  Adam adam(token_params + proj_params + d, config.adam);
  const size_t proj_offset = token_params;
  const size_t bias_offset = token_params + proj_params;

  std::vector<Triple> shuffled(triples);
  Rng rng(config.seed);
  EncoderGradients grads;
  grads.Reset(d);

  for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
    rng.Shuffle(shuffled);
    double epoch_loss = 0.0;
    size_t active = 0;
    for (size_t start = 0; start < shuffled.size();
         start += config.batch_size) {
      const size_t end = std::min(shuffled.size(), start + config.batch_size);
      grads.Reset(d);
      size_t batch_active = 0;
      for (size_t i = start; i < end; ++i) {
        const Triple& t = shuffled[i];
        const auto cache_s = encoder_->Forward(corpus_->Document(t.seed));
        const auto cache_p = encoder_->Forward(corpus_->Document(t.positive));
        const auto cache_n = encoder_->Forward(corpus_->Document(t.negative));
        const TripletLossResult loss = ComputeTripletLoss(
            cache_s.output, cache_p.output, cache_n.output, config.margin);
        epoch_loss += loss.loss;
        if (!loss.active) continue;
        ++batch_active;
        encoder_->Backward(cache_s, loss.grad_seed, grads);
        encoder_->Backward(cache_p, loss.grad_positive, grads);
        encoder_->Backward(cache_n, loss.grad_negative, grads);
      }
      if (batch_active == 0) continue;
      active += batch_active;
      // Average accumulated gradients over the batch, then one Adam step.
      const float inv = 1.0f / static_cast<float>(end - start);
      adam.BeginStep();
      if (config.train_token_embeddings) {
        for (auto& [token, grad] : grads.d_tokens) {
          for (float& g : grad) g *= inv;
          adam.UpdateRow(encoder_->token_embeddings(),
                         static_cast<size_t>(token), grad, /*block_offset=*/0);
        }
      }
      for (size_t r = 0; r < grads.d_projection.rows(); ++r) {
        for (float& g : grads.d_projection.Row(r)) g *= inv;
      }
      for (float& g : grads.d_bias) g *= inv;
      // Projection rows share one dense Adam block starting at
      // proj_offset; row r's state lives at proj_offset + r * d.
      for (size_t r = 0; r < d; ++r) {
        adam.UpdateRow(encoder_->projection(), r, grads.d_projection.Row(r),
                       proj_offset);
      }
      adam.UpdateDense(std::span<float>(encoder_->bias()), grads.d_bias,
                       bias_offset);
    }
    stats.epoch_loss.push_back(epoch_loss /
                               static_cast<double>(shuffled.size()));
    stats.final_active_fraction =
        static_cast<double>(active) / static_cast<double>(shuffled.size());
    KPEF_COUNTER_ADD(obs::kTrainerEpochsTotal, 1);
    KPEF_GAUGE_SET(obs::kTrainerLastEpochLoss, stats.epoch_loss.back());
    KPEF_LOG(Info) << "epoch " << epoch + 1 << "/" << config.epochs
                   << " loss=" << stats.epoch_loss.back()
                   << " active=" << stats.final_active_fraction;
  }
  stats.train_seconds = timer.ElapsedSeconds();
  if (stats.train_seconds > 0.0) {
    KPEF_GAUGE_SET(obs::kTrainerTriplesPerSec,
                   static_cast<double>(stats.num_triples * config.epochs) /
                       stats.train_seconds);
  }
  return stats;
}

}  // namespace kpef

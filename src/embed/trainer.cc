#include "embed/trainer.h"

#include <algorithm>
#include <memory>
#include <numeric>
#include <thread>

#include "common/logging.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "embed/vector_ops.h"
#include "obs/metrics.h"
#include "obs/pipeline_metrics.h"
#include "obs/trace.h"

// TSan cannot model HogWild's intentional benign races (aligned float
// loads/stores on shared parameters); sanitizer builds keep the
// disjoint-buffer deterministic schedule instead (see trainer.h).
#if defined(__SANITIZE_THREAD__)
#define KPEF_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define KPEF_TSAN_BUILD 1
#endif
#endif

namespace kpef {
namespace {

/// Per-worker (HogWild) or per-chunk (deterministic) training state,
/// reused across batches and epochs so the hot loop allocates nothing
/// after first touch.
struct Workspace {
  DocumentEncoder::ForwardCache cache_seed;
  DocumentEncoder::ForwardCache cache_pos;
  DocumentEncoder::ForwardCache cache_neg;
  TripletLossResult loss;
  EncoderGradients grads;
  std::vector<uint32_t> local_order;  // HogWild: this worker's slice
  double loss_sum = 0.0;
  size_t active = 0;
};

/// One Train() invocation's shared state and the two epoch schedules.
class TrainRun {
 public:
  TrainRun(DocumentEncoder* encoder, const Corpus* corpus,
           const std::vector<Triple>& triples, const TrainerConfig& config,
           const DistanceKernel& kernel, Adam& adam)
      : encoder_(encoder),
        corpus_(corpus),
        triples_(triples),
        config_(config),
        kernel_(kernel),
        adam_(adam),
        d_(encoder->dim()),
        proj_offset_(encoder->vocab_size() * encoder->dim()),
        bias_offset_(proj_offset_ + encoder->dim() * encoder->dim()) {}

  /// Deterministic schedule: fixed micro-chunks per batch, disjoint
  /// per-chunk gradients, serial merge in chunk order, one Adam step.
  /// Byte-identical results for any pool size (including pool==nullptr).
  double DeterministicEpoch(const std::vector<uint32_t>& order,
                            std::vector<Workspace>& ws, ThreadPool* pool,
                            size_t* epoch_active) {
    constexpr size_t kChunk = TripletTrainer::kDeterministicChunk;
    double epoch_loss = 0.0;
    const size_t n = order.size();
    for (size_t start = 0; start < n; start += config_.batch_size) {
      const size_t end = std::min(n, start + config_.batch_size);
      const size_t chunks = (end - start + kChunk - 1) / kChunk;
      KPEF_CHECK(chunks <= ws.size());
      auto run_chunk = [&](size_t c) {
        Workspace& w = ws[c];
        w.grads.Reset(d_);
        w.loss_sum = 0.0;
        w.active = 0;
        const size_t cbegin = start + c * kChunk;
        const size_t cend = std::min(end, cbegin + kChunk);
        for (size_t i = cbegin; i < cend; ++i) {
          ProcessTriple(w, triples_[order[i]]);
        }
      };
      if (pool != nullptr && chunks > 1) {
        ParallelFor(*pool, chunks, run_chunk);
      } else {
        for (size_t c = 0; c < chunks; ++c) run_chunk(c);
      }
      // Serial merge in chunk order: float addition over a fixed order is
      // deterministic, so the merged gradient — and every parameter bit
      // downstream — is independent of how chunks were scheduled.
      size_t batch_active = 0;
      for (size_t c = 0; c < chunks; ++c) {
        epoch_loss += ws[c].loss_sum;
        batch_active += ws[c].active;
      }
      if (batch_active == 0) continue;
      *epoch_active += batch_active;
      EncoderGradients& merged = ws[0].grads;
      for (size_t c = 1; c < chunks; ++c) MergeGrads(merged, ws[c].grads);
      ApplyAdamStep(merged, end - start);
    }
    return epoch_loss;
  }

  /// HogWild schedule: W contiguous slices of the shuffled order, each
  /// worker re-shuffling its slice with its own MixSeed stream, then
  /// running mini-batches against the shared parameters and Adam state
  /// without locks. Throughput-optimal; not bitwise reproducible.
  double HogwildEpoch(const std::vector<uint32_t>& order,
                      std::vector<Workspace>& ws, ThreadPool& pool,
                      size_t epoch, size_t* epoch_active) {
    const size_t n = order.size();
    const size_t num_workers = ws.size();
    ParallelFor(pool, num_workers, [&](size_t w) {
      Workspace& me = ws[w];
      me.loss_sum = 0.0;
      me.active = 0;
      const size_t begin = n * w / num_workers;
      const size_t end = n * (w + 1) / num_workers;
      me.local_order.assign(order.begin() + static_cast<ptrdiff_t>(begin),
                            order.begin() + static_cast<ptrdiff_t>(end));
      Rng rng(MixSeed(config_.seed, /*stream=*/epoch, /*index=*/w));
      rng.Shuffle(me.local_order);
      for (size_t start = 0; start < me.local_order.size();
           start += config_.batch_size) {
        const size_t bend =
            std::min(me.local_order.size(), start + config_.batch_size);
        me.grads.Reset(d_);
        const size_t active_before = me.active;
        for (size_t i = start; i < bend; ++i) {
          ProcessTriple(me, triples_[me.local_order[i]]);
        }
        if (me.active == active_before) continue;
        ApplyAdamStep(me.grads, bend - start);
      }
    });
    double epoch_loss = 0.0;
    for (Workspace& w : ws) {
      epoch_loss += w.loss_sum;
      *epoch_active += w.active;
    }
    return epoch_loss;
  }

 private:
  /// Forward x3, triplet loss, and (when margin-active) backward x3 into
  /// the workspace's gradient accumulators. Allocation-free after the
  /// workspace's first use.
  void ProcessTriple(Workspace& ws, const Triple& t) {
    encoder_->ForwardInto(corpus_->Document(t.seed), ws.cache_seed, &kernel_);
    encoder_->ForwardInto(corpus_->Document(t.positive), ws.cache_pos,
                          &kernel_);
    encoder_->ForwardInto(corpus_->Document(t.negative), ws.cache_neg,
                          &kernel_);
    ComputeTripletLossInto(ws.cache_seed.output, ws.cache_pos.output,
                           ws.cache_neg.output, config_.margin,
                           /*epsilon=*/1e-8f, kernel_, ws.loss);
    ws.loss_sum += ws.loss.loss;
    if (!ws.loss.active) return;
    ++ws.active;
    encoder_->Backward(ws.cache_seed, ws.loss.grad_seed, ws.grads, &kernel_);
    encoder_->Backward(ws.cache_pos, ws.loss.grad_positive, ws.grads,
                       &kernel_);
    encoder_->Backward(ws.cache_neg, ws.loss.grad_negative, ws.grads,
                       &kernel_);
  }

  /// dst += src, in a fixed order (rows ascending; src's token map in its
  /// iteration order, which is a pure function of its insertion sequence).
  void MergeGrads(EncoderGradients& dst, const EncoderGradients& src) {
    for (size_t r = 0; r < d_; ++r) {
      kernel_.axpy(1.0f, src.d_projection.Row(r).data(),
                   dst.d_projection.Row(r).data(), d_);
    }
    kernel_.axpy(1.0f, src.d_bias.data(), dst.d_bias.data(), d_);
    for (const auto& [token, grad] : src.d_tokens) {
      auto [it, inserted] = dst.d_tokens.try_emplace(token);
      if (inserted) it->second.assign(d_, 0.0f);
      kernel_.axpy(1.0f, grad.data(), it->second.data(), d_);
    }
  }

  /// Averages the accumulated gradients over the batch and takes one Adam
  /// step. In HogWild mode this races with other workers on the shared
  /// moments and parameters — benign by construction (embed/adam.h).
  void ApplyAdamStep(EncoderGradients& grads, size_t batch_size) {
    const float inv = 1.0f / static_cast<float>(batch_size);
    adam_.BeginStep();
    if (config_.train_token_embeddings) {
      for (auto& [token, grad] : grads.d_tokens) {
        kernel_.scale(inv, grad.data(), grad.size());
        adam_.UpdateRow(encoder_->token_embeddings(),
                        static_cast<size_t>(token), grad, /*block_offset=*/0);
      }
    }
    // Projection rows share one dense Adam block starting at
    // proj_offset; row r's state lives at proj_offset + r * d.
    for (size_t r = 0; r < d_; ++r) {
      auto row = grads.d_projection.Row(r);
      kernel_.scale(inv, row.data(), row.size());
      adam_.UpdateRow(encoder_->projection(), r, row, proj_offset_);
    }
    kernel_.scale(inv, grads.d_bias.data(), grads.d_bias.size());
    adam_.UpdateDense(std::span<float>(encoder_->bias()), grads.d_bias,
                      bias_offset_);
  }

  DocumentEncoder* encoder_;
  const Corpus* corpus_;
  const std::vector<Triple>& triples_;
  const TrainerConfig& config_;
  const DistanceKernel& kernel_;
  Adam& adam_;
  const size_t d_;
  const size_t proj_offset_;
  const size_t bias_offset_;
};

}  // namespace

TrainStats TripletTrainer::Train(const std::vector<Triple>& triples,
                                 const TrainerConfig& config) {
  KPEF_TRACE_SPAN("trainer.train");
  Timer timer;
  TrainStats stats;
  stats.num_triples = triples.size();
  if (triples.empty()) {
    KPEF_LOG(Warning) << "no training triples; encoder left unchanged";
    return stats;
  }
  KPEF_CHECK(config.batch_size > 0);

  const DistanceKernel& kernel =
      config.kernel != nullptr ? *config.kernel : ActiveKernel();
  const size_t d = encoder_->dim();
  const size_t token_params = encoder_->vocab_size() * d;
  const size_t proj_params = d * d;
  // One optimizer state over [tokens | projection | bias].
  Adam adam(token_params + proj_params + d, config.adam, &kernel);

  size_t workers =
      config.num_threads != 0
          ? config.num_threads
          : std::max<size_t>(1, std::thread::hardware_concurrency());
  workers = std::max<size_t>(1, std::min(workers, triples.size()));
  bool deterministic = config.deterministic || workers <= 1;
#ifdef KPEF_TSAN_BUILD
  deterministic = true;
#endif
  stats.workers = workers;
  stats.deterministic = deterministic;

  // Deterministic mode needs one workspace per micro-chunk of a batch,
  // HogWild one per worker.
  const size_t num_ws =
      deterministic ? (std::min(config.batch_size, triples.size()) +
                       kDeterministicChunk - 1) /
                          kDeterministicChunk
                    : workers;
  std::vector<Workspace> workspaces(std::max<size_t>(1, num_ws));
  std::unique_ptr<ThreadPool> pool;
  if (workers > 1) pool = std::make_unique<ThreadPool>(workers);

  TrainRun run(encoder_, corpus_, triples, config, kernel, adam);

  std::vector<uint32_t> order(triples.size());
  std::iota(order.begin(), order.end(), 0u);
  Rng rng(config.seed);
  const double n = static_cast<double>(triples.size());

  for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
    rng.Shuffle(order);
    size_t active = 0;
    const double epoch_loss =
        deterministic
            ? run.DeterministicEpoch(order, workspaces, pool.get(), &active)
            : run.HogwildEpoch(order, workspaces, *pool, epoch, &active);
    stats.epoch_loss.push_back(epoch_loss / n);
    stats.final_active_fraction = static_cast<double>(active) / n;
    KPEF_COUNTER_ADD(obs::kTrainerEpochsTotal, 1);
    KPEF_GAUGE_SET(obs::kTrainerEpochLoss, stats.epoch_loss.back());
    KPEF_LOG(Info) << "epoch " << epoch + 1 << "/" << config.epochs
                   << " loss=" << stats.epoch_loss.back()
                   << " active=" << stats.final_active_fraction
                   << " workers=" << workers
                   << (deterministic ? " (deterministic)" : " (hogwild)");
  }
  stats.train_seconds = timer.ElapsedSeconds();
  if (stats.train_seconds > 0.0) {
    stats.triples_per_sec =
        static_cast<double>(stats.num_triples * config.epochs) /
        stats.train_seconds;
    KPEF_GAUGE_SET(obs::kTrainerTriplesPerSec, stats.triples_per_sec);
  }
  KPEF_GAUGE_SET(obs::kTrainerActiveTriples, stats.final_active_fraction);
  KPEF_GAUGE_SET(obs::kTrainerWorkers, static_cast<double>(stats.workers));
  return stats;
}

}  // namespace kpef

// GloVe-style co-occurrence pre-training of token embeddings.
//
// Plays the role of the paper's pre-trained SciBERT weights Θ_B: it gives
// the document encoder a semantically meaningful starting point, which the
// triplet fine-tuning of §III-C then adapts with structural signal. Also
// provides the word vectors of the Avg.GloVe baseline directly.

#ifndef KPEF_EMBED_PRETRAIN_H_
#define KPEF_EMBED_PRETRAIN_H_

#include <cstdint>

#include "embed/matrix.h"
#include "text/corpus.h"

namespace kpef {

/// Pre-training hyperparameters (GloVe defaults scaled to small corpora).
struct PretrainConfig {
  size_t dim = 64;
  /// Symmetric co-occurrence window; pairs are weighted 1/distance.
  size_t window = 5;
  size_t epochs = 12;
  /// AdaGrad initial learning rate.
  double learning_rate = 0.05;
  /// Weighting-function knee: f(x) = min(1, (x / x_max)^alpha).
  double x_max = 20.0;
  double alpha = 0.75;
  uint64_t seed = 42;
};

/// Result of pre-training: the token embedding table (sum of the word and
/// context factor matrices, per the GloVe paper) and the final objective.
struct PretrainResult {
  Matrix token_embeddings;  // vocab_size x dim
  double final_loss = 0.0;
  size_t num_cooccurrence_pairs = 0;
};

/// Trains token embeddings on the corpus' co-occurrence statistics.
PretrainResult PretrainTokenEmbeddings(const Corpus& corpus,
                                       const PretrainConfig& config);

}  // namespace kpef

#endif  // KPEF_EMBED_PRETRAIN_H_

#include "embed/model_io.h"

#include <cstdint>
#include <fstream>

namespace kpef {
namespace {

constexpr uint32_t kMatrixMagic = 0x4B50464D;   // "KPFM"
constexpr uint32_t kEncoderMagic = 0x4B504645;  // "KPFE"
constexpr uint32_t kVersion = 1;

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& in, T& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  return static_cast<bool>(in);
}

// Overflow-safe plausibility check for serialized matrix dimensions.
// Bounds rows and cols individually *before* touching the product: a
// hostile header like rows = 2^33, cols = 2^31 wraps rows * cols to a
// small uint64_t, so a product-only check would pass and the subsequent
// Matrix(rows, cols) would attempt an enormous allocation.
bool PlausibleMatrixDims(uint64_t rows, uint64_t cols) {
  constexpr uint64_t kMaxRows = 1ull << 32;
  constexpr uint64_t kMaxCols = 1ull << 20;
  constexpr uint64_t kMaxElements = 1ull << 31;
  if (rows > kMaxRows || cols > kMaxCols) return false;
  return cols == 0 || rows <= kMaxElements / cols;
}

Status WriteFloats(std::ostream& out, const std::vector<float>& data) {
  const uint64_t count = data.size();
  WritePod(out, count);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(count * sizeof(float)));
  if (!out) return Status::IOError("write failed");
  return Status::OK();
}

StatusOr<std::vector<float>> ReadFloats(std::istream& in,
                                        uint64_t max_count = (1ull << 32)) {
  uint64_t count = 0;
  if (!ReadPod(in, count) || count > max_count) {
    return Status::InvalidArgument("corrupt float array header");
  }
  std::vector<float> data(count);
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(count * sizeof(float)));
  if (!in) return Status::InvalidArgument("truncated float array");
  return data;
}

// Writes a matrix's logical values as one flat float array (rows * cols;
// the in-memory row padding is not serialized, keeping the on-disk
// format identical to pre-padding builds).
Status WriteMatrixValues(std::ostream& out, const Matrix& matrix) {
  const uint64_t count =
      static_cast<uint64_t>(matrix.rows()) * matrix.cols();
  WritePod(out, count);
  for (size_t r = 0; r < matrix.rows(); ++r) {
    const auto row = matrix.Row(r);
    out.write(reinterpret_cast<const char*>(row.data()),
              static_cast<std::streamsize>(row.size() * sizeof(float)));
  }
  if (!out) return Status::IOError("write failed");
  return Status::OK();
}

// Reads a flat float array written by WriteMatrixValues into `matrix`
// (whose dimensions must already match the serialized count).
Status ReadMatrixValues(std::istream& in, Matrix& matrix) {
  uint64_t count = 0;
  if (!ReadPod(in, count) ||
      count != static_cast<uint64_t>(matrix.rows()) * matrix.cols()) {
    return Status::InvalidArgument("matrix size mismatch");
  }
  for (size_t r = 0; r < matrix.rows(); ++r) {
    auto row = matrix.Row(r);
    in.read(reinterpret_cast<char*>(row.data()),
            static_cast<std::streamsize>(row.size() * sizeof(float)));
  }
  if (!in) return Status::InvalidArgument("truncated float array");
  return Status::OK();
}

}  // namespace

Status SaveMatrix(const Matrix& matrix, std::ostream& out) {
  WritePod(out, kMatrixMagic);
  WritePod(out, kVersion);
  WritePod(out, static_cast<uint64_t>(matrix.rows()));
  WritePod(out, static_cast<uint64_t>(matrix.cols()));
  return WriteMatrixValues(out, matrix);
}

Status SaveMatrix(const Matrix& matrix, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  KPEF_RETURN_IF_ERROR(SaveMatrix(matrix, out));
  out.close();
  if (!out) return Status::IOError("flush failed for " + path);
  return Status::OK();
}

StatusOr<Matrix> LoadMatrix(std::istream& in) {
  uint32_t magic = 0, version = 0;
  uint64_t rows = 0, cols = 0;
  if (!ReadPod(in, magic) || magic != kMatrixMagic) {
    return Status::InvalidArgument("not a kpef matrix file");
  }
  if (!ReadPod(in, version) || version != kVersion) {
    return Status::InvalidArgument("unsupported matrix version");
  }
  if (!ReadPod(in, rows) || !ReadPod(in, cols) ||
      !PlausibleMatrixDims(rows, cols)) {
    return Status::InvalidArgument("corrupt matrix header");
  }
  Matrix matrix(rows, cols);
  KPEF_RETURN_IF_ERROR(ReadMatrixValues(in, matrix));
  return matrix;
}

StatusOr<Matrix> LoadMatrix(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  return LoadMatrix(in);
}

Status SaveEncoder(const DocumentEncoder& encoder, std::ostream& out) {
  WritePod(out, kEncoderMagic);
  WritePod(out, kVersion);
  WritePod(out, static_cast<uint64_t>(encoder.vocab_size()));
  WritePod(out, static_cast<uint64_t>(encoder.dim()));
  WritePod(out, static_cast<int32_t>(encoder.config().pooling));
  WritePod(out, static_cast<uint8_t>(encoder.config().normalize_output));
  KPEF_RETURN_IF_ERROR(WriteMatrixValues(out, encoder.token_embeddings()));
  KPEF_RETURN_IF_ERROR(WriteMatrixValues(out, encoder.projection()));
  KPEF_RETURN_IF_ERROR(WriteFloats(out, encoder.bias()));
  return WriteFloats(out, encoder.token_weights());
}

Status SaveEncoder(const DocumentEncoder& encoder, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  KPEF_RETURN_IF_ERROR(SaveEncoder(encoder, out));
  out.close();
  if (!out) return Status::IOError("flush failed for " + path);
  return Status::OK();
}

StatusOr<DocumentEncoder> LoadEncoder(std::istream& in) {
  uint32_t magic = 0, version = 0;
  uint64_t vocab = 0, dim = 0;
  int32_t pooling = 0;
  uint8_t normalize = 1;
  if (!ReadPod(in, magic) || magic != kEncoderMagic) {
    return Status::InvalidArgument("not a kpef encoder file");
  }
  if (!ReadPod(in, version) || version != kVersion) {
    return Status::InvalidArgument("unsupported encoder version");
  }
  if (!ReadPod(in, vocab) || !ReadPod(in, dim) || !ReadPod(in, pooling) ||
      !ReadPod(in, normalize)) {
    return Status::InvalidArgument("corrupt encoder header");
  }
  if (pooling < 0 || pooling > static_cast<int32_t>(Pooling::kWeightedMean)) {
    return Status::InvalidArgument("unknown pooling mode");
  }
  if (!PlausibleMatrixDims(vocab, dim)) {
    return Status::InvalidArgument("implausible encoder dimensions");
  }
  EncoderConfig config;
  config.dim = dim;
  config.pooling = static_cast<Pooling>(pooling);
  config.normalize_output = normalize != 0;
  DocumentEncoder encoder(vocab, config);

  KPEF_RETURN_IF_ERROR(ReadMatrixValues(in, encoder.token_embeddings()));
  KPEF_RETURN_IF_ERROR(ReadMatrixValues(in, encoder.projection()));
  // Cap the declared array sizes by what the header implies, so a
  // corrupt count is rejected before the vector allocation, not after.
  KPEF_ASSIGN_OR_RETURN(std::vector<float> bias, ReadFloats(in, dim));
  if (bias.size() != dim) {
    return Status::InvalidArgument("bias size mismatch");
  }
  encoder.bias() = std::move(bias);
  KPEF_ASSIGN_OR_RETURN(std::vector<float> weights, ReadFloats(in, vocab));
  if (!weights.empty()) {
    if (weights.size() != vocab) {
      return Status::InvalidArgument("token weight size mismatch");
    }
    encoder.SetTokenWeights(std::move(weights));
  }
  return encoder;
}

StatusOr<DocumentEncoder> LoadEncoder(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  return LoadEncoder(in);
}

}  // namespace kpef

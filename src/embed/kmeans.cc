#include "embed/kmeans.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "common/rng.h"
#include "embed/vector_ops.h"

namespace kpef {

KMeansResult RunKMeans(const Matrix& points, const KMeansConfig& config) {
  KMeansResult result;
  const size_t n = points.rows();
  const size_t d = points.cols();
  const size_t k = std::min(config.num_clusters, n);
  result.centroids = Matrix(k, d);
  result.assignment.assign(n, 0);
  if (n == 0 || k == 0) return result;

  Rng rng(config.seed);
  // k-means++ seeding.
  std::vector<size_t> chosen;
  chosen.push_back(rng.Uniform(n));
  std::vector<double> min_dist(n, std::numeric_limits<double>::max());
  while (chosen.size() < k) {
    const size_t last = chosen.back();
    for (size_t i = 0; i < n; ++i) {
      min_dist[i] = std::min(
          min_dist[i],
          static_cast<double>(SquaredL2Distance(points.Row(i),
                                                points.Row(last))));
    }
    chosen.push_back(rng.Discrete(min_dist));
  }
  for (size_t c = 0; c < k; ++c) {
    auto src = points.Row(chosen[c]);
    std::copy(src.begin(), src.end(), result.centroids.Row(c).begin());
  }

  std::vector<size_t> counts(k, 0);
  for (size_t iter = 0; iter < config.max_iterations; ++iter) {
    result.iterations_run = iter + 1;
    // Assignment step.
    bool changed = false;
    result.inertia = 0.0;
    for (size_t i = 0; i < n; ++i) {
      int32_t best = 0;
      float best_dist = std::numeric_limits<float>::max();
      for (size_t c = 0; c < k; ++c) {
        const float dist =
            SquaredL2Distance(points.Row(i), result.centroids.Row(c));
        if (dist < best_dist) {
          best_dist = dist;
          best = static_cast<int32_t>(c);
        }
      }
      result.inertia += best_dist;
      if (result.assignment[i] != best) {
        result.assignment[i] = best;
        changed = true;
      }
    }
    if (!changed && iter > 0) break;
    // Update step.
    result.centroids.Fill(0.0f);
    std::fill(counts.begin(), counts.end(), 0);
    for (size_t i = 0; i < n; ++i) {
      auto centroid = result.centroids.Row(result.assignment[i]);
      auto point = points.Row(i);
      for (size_t j = 0; j < d; ++j) centroid[j] += point[j];
      ++counts[result.assignment[i]];
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Reseed an empty cluster from a random point.
        auto src = points.Row(rng.Uniform(n));
        std::copy(src.begin(), src.end(), result.centroids.Row(c).begin());
        continue;
      }
      const float inv = 1.0f / static_cast<float>(counts[c]);
      for (float& v : result.centroids.Row(c)) v *= inv;
    }
  }
  return result;
}

}  // namespace kpef

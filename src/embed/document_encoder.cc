#include "embed/document_encoder.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "embed/vector_ops.h"

#include "common/logging.h"
#include "common/thread_pool.h"

namespace kpef {

void EncoderGradients::Reset(size_t dim) {
  if (d_projection.rows() != dim) {
    d_projection = Matrix(dim, dim);
    d_bias.assign(dim, 0.0f);
  } else {
    d_projection.Fill(0.0f);
    std::fill(d_bias.begin(), d_bias.end(), 0.0f);
  }
  d_tokens.clear();
  scratch_grad_projected.resize(dim);
  scratch_grad_pooled.resize(dim);
}

DocumentEncoder::DocumentEncoder(size_t vocab_size, EncoderConfig config)
    : config_(config),
      token_embeddings_(vocab_size, config.dim),
      projection_(config.dim, config.dim),
      bias_(config.dim, 0.0f) {
  // Near-identity projection: the un-fine-tuned encoder reduces to pooled
  // token embeddings, i.e. the "pre-trained model" output.
  for (size_t i = 0; i < config_.dim; ++i) projection_.At(i, i) = 1.0f;
}

void DocumentEncoder::SetTokenEmbeddings(const Matrix& pretrained) {
  KPEF_CHECK(pretrained.rows() == token_embeddings_.rows());
  KPEF_CHECK(pretrained.cols() == token_embeddings_.cols());
  token_embeddings_ = pretrained;
}

void DocumentEncoder::InitializeRandomTokens(Rng& rng, float scale) {
  for (size_t r = 0; r < token_embeddings_.rows(); ++r) {
    for (float& v : token_embeddings_.Row(r)) {
      v = static_cast<float>(rng.Normal(0.0, scale));
    }
  }
}

void DocumentEncoder::SetTokenWeights(std::vector<float> weights) {
  KPEF_CHECK(weights.size() == token_embeddings_.rows());
  token_weights_ = std::move(weights);
}

void DocumentEncoder::Pool(std::span<const TokenId> tokens,
                           std::vector<float>& pooled,
                           std::vector<int32_t>* argmax,
                           const DistanceKernel& kernel) const {
  const size_t d = config_.dim;
  pooled.assign(d, 0.0f);
  if (tokens.empty()) return;
  if (config_.pooling == Pooling::kMean ||
      config_.pooling == Pooling::kWeightedMean) {
    const bool weighted = config_.pooling == Pooling::kWeightedMean;
    KPEF_CHECK(!weighted || !token_weights_.empty())
        << "SetTokenWeights before weighted pooling";
    float total = 0.0f;
    for (TokenId t : tokens) {
      const float w = weighted ? token_weights_[t] : 1.0f;
      total += w;
      kernel.axpy(w, token_embeddings_.Row(t).data(), pooled.data(), d);
    }
    if (total > 0.0f) kernel.scale(1.0f / total, pooled.data(), d);
  } else {
    pooled.assign(d, -std::numeric_limits<float>::infinity());
    if (argmax) argmax->assign(d, 0);
    for (size_t i = 0; i < tokens.size(); ++i) {
      auto row = token_embeddings_.Row(tokens[i]);
      for (size_t k = 0; k < d; ++k) {
        if (row[k] > pooled[k]) {
          pooled[k] = row[k];
          if (argmax) (*argmax)[k] = static_cast<int32_t>(i);
        }
      }
    }
  }
}

std::vector<float> DocumentEncoder::Encode(
    std::span<const TokenId> tokens) const {
  // Delegates to ForwardInto so Encode and Forward stay bit-identical.
  ForwardCache cache;
  ForwardInto(tokens, cache);
  return std::move(cache.output);
}

Matrix DocumentEncoder::EncodeCorpus(const Corpus& corpus) const {
  Matrix out(corpus.NumDocuments(), config_.dim);
  ParallelFor(corpus.NumDocuments(), [&](size_t doc) {
    const std::vector<float> v = Encode(corpus.Document(doc));
    std::copy(v.begin(), v.end(), out.Row(doc).begin());
  });
  return out;
}

DocumentEncoder::ForwardCache DocumentEncoder::Forward(
    std::span<const TokenId> tokens) const {
  ForwardCache cache;
  ForwardInto(tokens, cache);
  return cache;
}

void DocumentEncoder::ForwardInto(std::span<const TokenId> tokens,
                                  ForwardCache& cache,
                                  const DistanceKernel* kernel) const {
  const DistanceKernel& k = kernel != nullptr ? *kernel : ActiveKernel();
  const size_t d = config_.dim;
  cache.tokens.assign(tokens.begin(), tokens.end());
  Pool(tokens, cache.pooled,
       config_.pooling == Pooling::kMax ? &cache.argmax : nullptr, k);
  cache.projected.assign(bias_.begin(), bias_.end());
  for (size_t i = 0; i < d; ++i) {
    cache.projected[i] +=
        k.dot(projection_.Row(i).data(), cache.pooled.data(), d);
  }
  cache.output.assign(cache.projected.begin(), cache.projected.end());
  cache.norm = 1.0f;
  if (config_.normalize_output) {
    cache.norm = std::max(
        std::sqrt(k.dot(cache.output.data(), cache.output.data(), d)), 1e-12f);
    k.scale(1.0f / cache.norm, cache.output.data(), d);
  }
}

void DocumentEncoder::Backward(const ForwardCache& cache,
                               std::span<const float> grad_output,
                               EncoderGradients& grads,
                               const DistanceKernel* kernel) const {
  const DistanceKernel& k = kernel != nullptr ? *kernel : ActiveKernel();
  const size_t d = config_.dim;
  KPEF_CHECK(grad_output.size() == d);
  KPEF_CHECK(grads.d_bias.size() == d) << "call Reset() before Backward";
  // Backprop through the normalization u = v/||v||:
  //   dL/dv = (dL/du - (dL/du . u) u) / ||v||.
  std::vector<float>& grad_projected = grads.scratch_grad_projected;
  if (config_.normalize_output) {
    const float dot = k.dot(grad_output.data(), cache.output.data(), d);
    const float inv = 1.0f / cache.norm;
    grad_projected.assign(d, 0.0f);
    k.axpy2(inv, grad_output.data(), -dot * inv, cache.output.data(),
            grad_projected.data(), d);
  } else {
    grad_projected.assign(grad_output.begin(), grad_output.end());
  }
  // dL/dW[i][k] = g[i] * h[k];  dL/db[i] = g[i].
  for (size_t i = 0; i < d; ++i) {
    const float g = grad_projected[i];
    grads.d_bias[i] += g;
    k.axpy(g, cache.pooled.data(), grads.d_projection.Row(i).data(), d);
  }
  if (cache.tokens.empty()) return;
  // dL/dh = W^T g.
  std::vector<float>& grad_pooled = grads.scratch_grad_pooled;
  grad_pooled.assign(d, 0.0f);
  for (size_t i = 0; i < d; ++i) {
    k.axpy(grad_projected[i], projection_.Row(i).data(), grad_pooled.data(),
           d);
  }
  auto token_grad = [&](TokenId t) -> std::vector<float>& {
    auto [it, inserted] = grads.d_tokens.try_emplace(t);
    if (inserted) it->second.assign(d, 0.0f);
    return it->second;
  };
  if (config_.pooling == Pooling::kMean ||
      config_.pooling == Pooling::kWeightedMean) {
    const bool weighted = config_.pooling == Pooling::kWeightedMean;
    float total = 0.0f;
    if (weighted) {
      for (TokenId t : cache.tokens) total += token_weights_[t];
    } else {
      total = static_cast<float>(cache.tokens.size());
    }
    if (total <= 0.0f) return;
    const float inv = 1.0f / total;
    for (TokenId t : cache.tokens) {
      const float w = weighted ? token_weights_[t] : 1.0f;
      k.axpy(w * inv, grad_pooled.data(), token_grad(t).data(), d);
    }
  } else {
    // Max pooling routes each dimension's gradient to the winning token.
    for (size_t k2 = 0; k2 < d; ++k2) {
      const TokenId t = cache.tokens[cache.argmax[k2]];
      token_grad(t)[k2] += grad_pooled[k2];
    }
  }
}

}  // namespace kpef

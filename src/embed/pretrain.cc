#include "embed/pretrain.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/logging.h"
#include "common/rng.h"

namespace kpef {
namespace {

// Packs an (i, j) token pair into one map key.
uint64_t PairKey(TokenId i, TokenId j) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(i)) << 32) |
         static_cast<uint32_t>(j);
}

struct CoocEntry {
  TokenId i;
  TokenId j;
  float count;
};

std::vector<CoocEntry> BuildCooccurrence(const Corpus& corpus,
                                         size_t window) {
  std::unordered_map<uint64_t, float> counts;
  for (size_t d = 0; d < corpus.NumDocuments(); ++d) {
    const auto& doc = corpus.Document(d);
    for (size_t a = 0; a < doc.size(); ++a) {
      const size_t end = std::min(doc.size(), a + 1 + window);
      for (size_t b = a + 1; b < end; ++b) {
        if (doc[a] == doc[b]) continue;
        const float w = 1.0f / static_cast<float>(b - a);
        // Symmetric: store with the smaller id first.
        const TokenId lo = std::min(doc[a], doc[b]);
        const TokenId hi = std::max(doc[a], doc[b]);
        counts[PairKey(lo, hi)] += w;
      }
    }
  }
  std::vector<CoocEntry> entries;
  entries.reserve(counts.size());
  for (const auto& [key, count] : counts) {
    entries.push_back({static_cast<TokenId>(key >> 32),
                       static_cast<TokenId>(key & 0xFFFFFFFFu), count});
  }
  return entries;
}

}  // namespace

PretrainResult PretrainTokenEmbeddings(const Corpus& corpus,
                                       const PretrainConfig& config) {
  const size_t vocab = corpus.vocabulary().size();
  const size_t dim = config.dim;
  Rng rng(config.seed);

  std::vector<CoocEntry> entries = BuildCooccurrence(corpus, config.window);

  // Word and context factors plus biases, AdaGrad accumulators start at 1.
  Matrix w(vocab, dim), wt(vocab, dim);
  std::vector<float> bias(vocab, 0.0f), bias_t(vocab, 0.0f);
  const float init_scale = 0.5f / static_cast<float>(dim);
  for (size_t r = 0; r < w.rows(); ++r) {
    for (float& v : w.Row(r)) {
      v = static_cast<float>(rng.UniformDouble(-init_scale, init_scale));
    }
  }
  for (size_t r = 0; r < wt.rows(); ++r) {
    for (float& v : wt.Row(r)) {
      v = static_cast<float>(rng.UniformDouble(-init_scale, init_scale));
    }
  }
  Matrix gw(vocab, dim, 1.0f), gwt(vocab, dim, 1.0f);
  std::vector<float> gbias(vocab, 1.0f), gbias_t(vocab, 1.0f);

  const float lr = static_cast<float>(config.learning_rate);
  double loss = 0.0;
  for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
    rng.Shuffle(entries);
    loss = 0.0;
    for (const CoocEntry& e : entries) {
      auto wi = w.Row(e.i);
      auto wj = wt.Row(e.j);
      double dot = 0.0;
      for (size_t k = 0; k < dim; ++k) dot += static_cast<double>(wi[k]) * wj[k];
      const double diff =
          dot + bias[e.i] + bias_t[e.j] - std::log(static_cast<double>(e.count));
      const double weight =
          std::min(1.0, std::pow(e.count / config.x_max, config.alpha));
      loss += 0.5 * weight * diff * diff;
      const float grad_common = static_cast<float>(weight * diff);
      for (size_t k = 0; k < dim; ++k) {
        const float gi = grad_common * wj[k];
        const float gj = grad_common * wi[k];
        wi[k] -= lr * gi / std::sqrt(gw.At(e.i, k));
        wj[k] -= lr * gj / std::sqrt(gwt.At(e.j, k));
        gw.At(e.i, k) += gi * gi;
        gwt.At(e.j, k) += gj * gj;
      }
      bias[e.i] -= lr * grad_common / std::sqrt(gbias[e.i]);
      bias_t[e.j] -= lr * grad_common / std::sqrt(gbias_t[e.j]);
      gbias[e.i] += grad_common * grad_common;
      gbias_t[e.j] += grad_common * grad_common;
    }
  }

  PretrainResult result;
  result.token_embeddings = Matrix(vocab, dim);
  for (size_t t = 0; t < vocab; ++t) {
    auto out = result.token_embeddings.Row(t);
    auto a = w.Row(t);
    auto b = wt.Row(t);
    for (size_t k = 0; k < dim; ++k) out[k] = a[k] + b[k];
  }
  result.final_loss =
      entries.empty() ? 0.0 : loss / static_cast<double>(entries.size());
  result.num_cooccurrence_pairs = entries.size();
  KPEF_LOG(Info) << "pretrained " << vocab << " token embeddings on "
                 << entries.size() << " co-occurrence pairs, loss "
                 << result.final_loss;
  return result;
}

}  // namespace kpef

#include "baselines/idne.h"

#include <algorithm>
#include <cmath>

#include "baselines/text_features.h"
#include "embed/vector_ops.h"

namespace kpef {

IdneModel::IdneModel(const Dataset* dataset, const Corpus* corpus,
                     const Matrix* token_embeddings, size_t top_m,
                     IdneConfig config)
    : DenseExpertModel(dataset, corpus, top_m),
      token_embeddings_(token_embeddings),
      config_(config) {
  const Matrix text = MeanEmbedAllDocuments(*token_embeddings_, *corpus);
  KMeansConfig km;
  km.num_clusters = config_.num_topics;
  km.seed = config_.seed;
  topic_vectors_ = RunKMeans(text, km).centroids;

  paper_embeddings_ = Matrix(corpus->NumDocuments(), token_embeddings->cols());
  for (size_t doc = 0; doc < corpus->NumDocuments(); ++doc) {
    std::vector<float> t(text.Row(doc).begin(), text.Row(doc).end());
    const std::vector<float> v = AttentionEmbed(t);
    std::copy(v.begin(), v.end(), paper_embeddings_.Row(doc).begin());
  }
}

std::vector<float> IdneModel::AttentionEmbed(
    const std::vector<float>& text) const {
  const size_t d = text.size();
  const size_t k = topic_vectors_.rows();
  std::vector<float> out(d, 0.0f);
  if (k == 0) return text;
  // softmax over beta * cos(text, topic_k).
  std::vector<double> scores(k);
  double max_score = -1e30;
  for (size_t c = 0; c < k; ++c) {
    scores[c] = config_.attention_beta *
                CosineSimilarity(text, topic_vectors_.Row(c));
    max_score = std::max(max_score, scores[c]);
  }
  double total = 0.0;
  for (double& s : scores) {
    s = std::exp(s - max_score);
    total += s;
  }
  for (size_t c = 0; c < k; ++c) {
    const float w = static_cast<float>(scores[c] / total);
    auto topic = topic_vectors_.Row(c);
    for (size_t j = 0; j < d; ++j) out[j] += w * topic[j];
  }
  // Residual text component keeps within-topic ordering informative.
  const float rw = static_cast<float>(config_.residual_weight);
  for (size_t j = 0; j < d; ++j) {
    out[j] = (1.0f - rw) * out[j] + rw * text[j];
  }
  return out;
}

std::vector<float> IdneModel::EmbedQuery(const std::string& query_text) {
  return AttentionEmbed(MeanTokenEmbedding(
      *token_embeddings_, corpus_->EncodeQuery(query_text)));
}

}  // namespace kpef

// Shared retrieval scaffolding for the dense-embedding baselines: score
// every paper against the query embedding (the baselines have no index),
// take the top-m papers, and rank all candidate experts exhaustively.

#ifndef KPEF_BASELINES_DENSE_EXPERT_MODEL_H_
#define KPEF_BASELINES_DENSE_EXPERT_MODEL_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "embed/matrix.h"
#include "eval/retrieval_model.h"
#include "text/corpus.h"

namespace kpef {

/// Base class: subclasses provide the fitted paper embeddings and a query
/// embedder; FindExperts implements the common retrieve-then-rank flow
/// (brute-force cosine retrieval + full-scan expert ranking, matching the
/// baselines' behaviour described in §VI-A).
class DenseExpertModel : public RetrievalModel {
 public:
  DenseExpertModel(const Dataset* dataset, const Corpus* corpus, size_t top_m)
      : dataset_(dataset), corpus_(corpus), top_m_(top_m) {}

  std::vector<ExpertScore> FindExperts(const std::string& query_text,
                                       size_t n) final;

  const Matrix& paper_embeddings() const { return paper_embeddings_; }

 protected:
  /// Embeds a query text into the model's vector space.
  virtual std::vector<float> EmbedQuery(const std::string& query_text) = 0;

  const Dataset* dataset_;
  const Corpus* corpus_;
  size_t top_m_;
  /// One row per paper (LocalIndex order); set by the subclass constructor.
  Matrix paper_embeddings_;
};

/// Retrieves the top-m papers for a query by brute-force cosine similarity
/// over `paper_embeddings`, returning paper node ids best-first (shared by
/// the TFIDF baseline, which has its own sparse scorer).
std::vector<NodeId> TopPapersByScore(const Dataset& dataset,
                                     const std::vector<float>& scores,
                                     size_t m);

}  // namespace kpef

#endif  // KPEF_BASELINES_DENSE_EXPERT_MODEL_H_

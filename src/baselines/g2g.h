// Graph2Gauss (G2G) [51] stand-in: a text encoder trained with a ranking
// (triplet) loss on the *homogeneous* paper graph's direct edges.
//
// Structurally this is the closest baseline to the paper's method — the
// crucial difference is the supervision: G2G pulls together any pair
// adjacent in the merged paper-paper graph (including the same-venue and
// free-rider noise the paper's introduction criticizes), while the
// (k, P)-core method samples positives from cohesive communities.

#ifndef KPEF_BASELINES_G2G_H_
#define KPEF_BASELINES_G2G_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/dense_expert_model.h"
#include "embed/document_encoder.h"
#include "metapath/projection.h"

namespace kpef {

struct G2GConfig {
  size_t triples_per_node = 3;
  size_t epochs = 3;
  float margin = 1.0f;
  uint64_t seed = 55;
};

class G2GModel : public DenseExpertModel {
 public:
  /// `pretrained_tokens` initializes the encoder (same starting point the
  /// paper's method gets).
  G2GModel(const Dataset* dataset, const Corpus* corpus,
           const HomogeneousProjection* projection,
           const Matrix* pretrained_tokens, size_t top_m, G2GConfig config = {});

  std::string name() const override { return "G2G"; }

 protected:
  std::vector<float> EmbedQuery(const std::string& query_text) override;

 private:
  std::unique_ptr<DocumentEncoder> encoder_;
};

}  // namespace kpef

#endif  // KPEF_BASELINES_G2G_H_

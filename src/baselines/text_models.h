// The three text-only baselines of Table II: TFIDF, Avg.GloVe, and the
// SBERT-like sentence embedder. None of them sees graph structure.

#ifndef KPEF_BASELINES_TEXT_MODELS_H_
#define KPEF_BASELINES_TEXT_MODELS_H_

#include <string>
#include <vector>

#include "baselines/dense_expert_model.h"
#include "text/tfidf.h"

namespace kpef {

/// TFIDF [47]: sparse lexical bag-of-words retrieval.
class TfIdfExpertModel : public RetrievalModel {
 public:
  TfIdfExpertModel(const Dataset* dataset, const Corpus* corpus,
                   const TfIdfModel* tfidf, size_t top_m)
      : dataset_(dataset), corpus_(corpus), tfidf_(tfidf), top_m_(top_m) {}

  std::string name() const override { return "TFIDF"; }
  std::vector<ExpertScore> FindExperts(const std::string& query_text,
                                       size_t n) override;

 private:
  const Dataset* dataset_;
  const Corpus* corpus_;
  const TfIdfModel* tfidf_;
  size_t top_m_;
};

/// Avg.GloVe [48]: unweighted mean of pre-trained word vectors.
class AvgGloveModel : public DenseExpertModel {
 public:
  AvgGloveModel(const Dataset* dataset, const Corpus* corpus,
                const Matrix* token_embeddings, size_t top_m);

  std::string name() const override { return "AvgGloVe"; }

 protected:
  std::vector<float> EmbedQuery(const std::string& query_text) override;

 private:
  const Matrix* token_embeddings_;
};

/// SBERT [23] stand-in: smooth-inverse-frequency weighted, normalized
/// sentence embedding — a stronger text-only encoder than the plain mean,
/// playing SBERT's role relative to Avg.GloVe.
class SbertLikeModel : public DenseExpertModel {
 public:
  SbertLikeModel(const Dataset* dataset, const Corpus* corpus,
                 const Matrix* token_embeddings, size_t top_m);

  std::string name() const override { return "SBERT"; }

 protected:
  std::vector<float> EmbedQuery(const std::string& query_text) override;

 private:
  const Matrix* token_embeddings_;
};

}  // namespace kpef

#endif  // KPEF_BASELINES_TEXT_MODELS_H_

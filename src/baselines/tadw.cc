#include "baselines/tadw.h"

#include <algorithm>

#include "baselines/text_features.h"
#include "common/logging.h"
#include "embed/vector_ops.h"

namespace kpef {

TadwModel::TadwModel(const Dataset* dataset, const Corpus* corpus,
                     const HomogeneousProjection* projection,
                     const Matrix* token_embeddings, size_t top_m)
    : DenseExpertModel(dataset, corpus, top_m),
      token_embeddings_(token_embeddings) {
  const size_t n = corpus->NumDocuments();
  const size_t d = token_embeddings->cols();
  KPEF_CHECK(projection->NumNodes() == n);
  const Matrix text = MeanEmbedAllDocuments(*token_embeddings_, *corpus);

  paper_embeddings_ = Matrix(n, 2 * d);
  for (size_t i = 0; i < n; ++i) {
    auto out = paper_embeddings_.Row(i);
    auto t = text.Row(i);
    // First half: the paper's own (normalized) text features.
    std::copy(t.begin(), t.end(), out.begin());
    NormalizeL2(out.subspan(0, d));
    // Second half: mean of the neighbors' text features (structure-
    // propagated text); falls back to own text for isolated papers.
    auto prop = out.subspan(d, d);
    const auto nbrs = projection->Neighbors(static_cast<int32_t>(i));
    if (nbrs.empty()) {
      std::copy(out.begin(), out.begin() + d, prop.begin());
    } else {
      for (int32_t j : nbrs) {
        auto tj = text.Row(static_cast<size_t>(j));
        for (size_t k = 0; k < d; ++k) prop[k] += tj[k];
      }
      Scale(1.0f / static_cast<float>(nbrs.size()), prop);
      NormalizeL2(prop);
    }
  }
}

std::vector<float> TadwModel::EmbedQuery(const std::string& query_text) {
  const std::vector<TokenId> tokens = corpus_->EncodeQuery(query_text);
  std::vector<float> text = MeanTokenEmbedding(*token_embeddings_, tokens);
  NormalizeL2(text);
  std::vector<float> out(2 * text.size());
  std::copy(text.begin(), text.end(), out.begin());
  std::copy(text.begin(), text.end(), out.begin() + text.size());
  return out;
}

}  // namespace kpef

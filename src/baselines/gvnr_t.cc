#include "baselines/gvnr_t.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "baselines/text_features.h"
#include "common/logging.h"
#include "common/rng.h"
#include "embed/vector_ops.h"

namespace kpef {
namespace {

uint64_t PairKey(int32_t doc, int32_t node) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(doc)) << 32) |
         static_cast<uint32_t>(node);
}

}  // namespace

std::vector<TokenId> GvnrTModel::SalientTokens(const SparseVector& vec) const {
  std::vector<SparseEntry> entries(vec.begin(), vec.end());
  std::sort(entries.begin(), entries.end(),
            [](const SparseEntry& a, const SparseEntry& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              return a.token < b.token;
            });
  std::vector<TokenId> tokens;
  const size_t keep = std::min(entries.size(), config_.salient_tokens);
  tokens.reserve(keep);
  for (size_t i = 0; i < keep; ++i) tokens.push_back(entries[i].token);
  return tokens;
}

std::vector<float> GvnrTModel::EmbedTokens(
    const std::vector<TokenId>& tokens) const {
  return MeanTokenEmbedding(word_vectors_, tokens);
}

GvnrTModel::GvnrTModel(const Dataset* dataset, const Corpus* corpus,
                       const HomogeneousProjection* projection,
                       const TfIdfModel* tfidf, size_t top_m,
                       GvnrTConfig config)
    : DenseExpertModel(dataset, corpus, top_m),
      tfidf_(tfidf),
      config_(config) {
  const size_t n = corpus->NumDocuments();
  const size_t d = config_.dim;
  const size_t vocab = corpus->vocabulary().size();
  Rng rng(config_.seed);

  // Salient token sets per document.
  std::vector<std::vector<TokenId>> salient(n);
  for (size_t i = 0; i < n; ++i) {
    salient[i] = SalientTokens(tfidf->DocumentVector(i));
  }

  // Random walks -> (center doc, context node) co-occurrence counts.
  std::unordered_map<uint64_t, float> counts;
  std::vector<int32_t> walk;
  for (size_t start = 0; start < n; ++start) {
    for (size_t w = 0; w < config_.walks_per_node; ++w) {
      walk.clear();
      int32_t current = static_cast<int32_t>(start);
      walk.push_back(current);
      for (size_t step = 1; step < config_.walk_length; ++step) {
        const auto nbrs = projection->Neighbors(current);
        if (nbrs.empty()) break;
        current = nbrs[rng.Uniform(nbrs.size())];
        walk.push_back(current);
      }
      for (size_t a = 0; a < walk.size(); ++a) {
        const size_t end = std::min(walk.size(), a + 1 + config_.window);
        for (size_t b = a + 1; b < end; ++b) {
          if (walk[a] == walk[b]) continue;
          counts[PairKey(walk[a], walk[b])] += 1.0f;
          counts[PairKey(walk[b], walk[a])] += 1.0f;
        }
      }
    }
  }
  struct Pair {
    int32_t doc;
    int32_t node;
    float count;
  };
  std::vector<Pair> pairs;
  pairs.reserve(counts.size());
  for (const auto& [key, count] : counts) {
    pairs.push_back({static_cast<int32_t>(key >> 32),
                     static_cast<int32_t>(key & 0xFFFFFFFFu), count});
  }

  // GloVe-style training: mean(word vectors of doc) . context(node).
  word_vectors_ = Matrix(vocab, d);
  Matrix context(n, d);
  std::vector<float> bias(n, 0.0f);
  const float init = 0.5f / static_cast<float>(d);
  for (size_t r = 0; r < word_vectors_.rows(); ++r) {
    for (float& v : word_vectors_.Row(r)) {
      v = static_cast<float>(rng.UniformDouble(-init, init));
    }
  }
  for (size_t r = 0; r < context.rows(); ++r) {
    for (float& v : context.Row(r)) {
      v = static_cast<float>(rng.UniformDouble(-init, init));
    }
  }
  Matrix grad_word(vocab, d, 1.0f), grad_ctx(n, d, 1.0f);
  std::vector<float> grad_bias(n, 1.0f);
  const float lr = static_cast<float>(config_.learning_rate);
  std::vector<float> doc_vec(d);

  for (size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(pairs);
    for (const Pair& p : pairs) {
      const auto& words = salient[p.doc];
      if (words.empty()) continue;
      // e = mean word vector of the doc's salient tokens.
      std::fill(doc_vec.begin(), doc_vec.end(), 0.0f);
      for (TokenId t : words) {
        auto row = word_vectors_.Row(static_cast<size_t>(t));
        for (size_t k = 0; k < d; ++k) doc_vec[k] += row[k];
      }
      const float inv_words = 1.0f / static_cast<float>(words.size());
      for (float& v : doc_vec) v *= inv_words;

      auto ctx = context.Row(p.node);
      double dot = bias[p.node];
      for (size_t k = 0; k < d; ++k) {
        dot += static_cast<double>(doc_vec[k]) * ctx[k];
      }
      const double diff = dot - std::log(static_cast<double>(p.count));
      const double weight =
          std::min(1.0, std::pow(p.count / config_.x_max, config_.alpha));
      const float g = static_cast<float>(weight * diff);
      // Word updates (shared gradient through the mean).
      for (TokenId t : words) {
        auto row = word_vectors_.Row(static_cast<size_t>(t));
        auto acc = grad_word.Row(static_cast<size_t>(t));
        for (size_t k = 0; k < d; ++k) {
          const float gw = g * ctx[k] * inv_words;
          row[k] -= lr * gw / std::sqrt(acc[k]);
          acc[k] += gw * gw;
        }
      }
      // Context and bias updates.
      auto acc_ctx = grad_ctx.Row(p.node);
      for (size_t k = 0; k < d; ++k) {
        const float gc = g * doc_vec[k];
        ctx[k] -= lr * gc / std::sqrt(acc_ctx[k]);
        acc_ctx[k] += gc * gc;
      }
      bias[p.node] -= lr * g / std::sqrt(grad_bias[p.node]);
      grad_bias[p.node] += g * g;
    }
  }

  // Final paper embeddings through the learned word vectors.
  paper_embeddings_ = Matrix(n, d);
  for (size_t i = 0; i < n; ++i) {
    const std::vector<float> v = EmbedTokens(salient[i]);
    std::copy(v.begin(), v.end(), paper_embeddings_.Row(i).begin());
  }
  KPEF_LOG(Info) << "GVNR-t trained on " << pairs.size()
                 << " co-occurrence pairs";
}

std::vector<float> GvnrTModel::EmbedQuery(const std::string& query_text) {
  const SparseVector vec =
      tfidf_->Vectorize(corpus_->EncodeQuery(query_text));
  return EmbedTokens(SalientTokens(vec));
}

}  // namespace kpef

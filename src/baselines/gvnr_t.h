// GVNR-t [50] stand-in: global vectors for node representations with text.
//
// Random walks over the homogeneous paper graph produce node co-occurrence
// counts; word vectors are trained (GloVe-style, AdaGrad) so that a
// document's representation — the mean of its salient words' vectors —
// reconstructs the log co-occurrence with context nodes. Inductive for
// queries: a query embeds through the same word vectors.

#ifndef KPEF_BASELINES_GVNR_T_H_
#define KPEF_BASELINES_GVNR_T_H_

#include <string>
#include <vector>

#include "baselines/dense_expert_model.h"
#include "metapath/projection.h"
#include "text/tfidf.h"

namespace kpef {

struct GvnrTConfig {
  size_t dim = 64;
  size_t walks_per_node = 8;
  size_t walk_length = 16;
  size_t window = 5;
  /// Salient tokens representing a document (top TF-IDF weights).
  size_t salient_tokens = 16;
  size_t epochs = 2;
  double learning_rate = 0.08;
  double x_max = 10.0;
  double alpha = 0.75;
  uint64_t seed = 91;
};

class GvnrTModel : public DenseExpertModel {
 public:
  GvnrTModel(const Dataset* dataset, const Corpus* corpus,
             const HomogeneousProjection* projection, const TfIdfModel* tfidf,
             size_t top_m, GvnrTConfig config = {});

  std::string name() const override { return "GVNR-t"; }

 protected:
  std::vector<float> EmbedQuery(const std::string& query_text) override;

 private:
  std::vector<TokenId> SalientTokens(const SparseVector& vec) const;
  std::vector<float> EmbedTokens(const std::vector<TokenId>& tokens) const;

  const TfIdfModel* tfidf_;
  GvnrTConfig config_;
  Matrix word_vectors_;  // vocab x dim
};

}  // namespace kpef

#endif  // KPEF_BASELINES_GVNR_T_H_

// TADW [49] stand-in: text-associated network embedding by feature
// propagation over the homogeneous paper graph.
//
// The original factorizes the DeepWalk proximity matrix with a text-factor
// constraint; at our scale one propagation step of the text features
// through the row-normalized adjacency captures the same "structure-
// smoothed text" representation. Paper embedding = [text | neighbor-mean
// text]; a query (no graph context) embeds as [text | text].

#ifndef KPEF_BASELINES_TADW_H_
#define KPEF_BASELINES_TADW_H_

#include <string>
#include <vector>

#include "baselines/dense_expert_model.h"
#include "metapath/projection.h"

namespace kpef {

class TadwModel : public DenseExpertModel {
 public:
  /// `projection` is the merged homogeneous paper-paper graph;
  /// `token_embeddings` provides the text features.
  TadwModel(const Dataset* dataset, const Corpus* corpus,
            const HomogeneousProjection* projection,
            const Matrix* token_embeddings, size_t top_m);

  std::string name() const override { return "TADW"; }

 protected:
  std::vector<float> EmbedQuery(const std::string& query_text) override;

 private:
  const Matrix* token_embeddings_;
};

}  // namespace kpef

#endif  // KPEF_BASELINES_TADW_H_

// IDNE [52] stand-in: inductive document embedding with topic-word
// attention.
//
// Latent "topics" are discovered by k-means over text features; a
// document embeds as the attention-weighted mixture of topic vectors
// (attention = softmax of scaled cosine between the document's text
// vector and each topic). Inductive: queries embed through the same
// attention mechanism.

#ifndef KPEF_BASELINES_IDNE_H_
#define KPEF_BASELINES_IDNE_H_

#include <string>
#include <vector>

#include "baselines/dense_expert_model.h"
#include "embed/kmeans.h"

namespace kpef {

struct IdneConfig {
  size_t num_topics = 32;
  /// Softmax temperature (higher = sharper attention).
  double attention_beta = 8.0;
  /// Residual weight of the raw text vector mixed into the topic mixture.
  double residual_weight = 0.25;
  uint64_t seed = 77;
};

class IdneModel : public DenseExpertModel {
 public:
  IdneModel(const Dataset* dataset, const Corpus* corpus,
            const Matrix* token_embeddings, size_t top_m,
            IdneConfig config = {});

  std::string name() const override { return "IDNE"; }

 protected:
  std::vector<float> EmbedQuery(const std::string& query_text) override;

 private:
  std::vector<float> AttentionEmbed(const std::vector<float>& text) const;

  const Matrix* token_embeddings_;
  IdneConfig config_;
  Matrix topic_vectors_;  // num_topics x dim
};

}  // namespace kpef

#endif  // KPEF_BASELINES_IDNE_H_

#include "baselines/text_models.h"

#include <algorithm>

#include "baselines/text_features.h"
#include "ranking/top_n_finder.h"

namespace kpef {

std::vector<ExpertScore> TfIdfExpertModel::FindExperts(
    const std::string& query_text, size_t n) {
  const SparseVector query =
      tfidf_->Vectorize(corpus_->EncodeQuery(query_text));
  const std::vector<float> scores = tfidf_->ScoreAll(query);
  const std::vector<NodeId> top_papers =
      TopPapersByScore(*dataset_, scores, top_m_);
  const RankedLists lists =
      BuildRankedLists(dataset_->graph, dataset_->ids.write, top_papers);
  return FullScanTopN(lists, n);
}

AvgGloveModel::AvgGloveModel(const Dataset* dataset, const Corpus* corpus,
                             const Matrix* token_embeddings, size_t top_m)
    : DenseExpertModel(dataset, corpus, top_m),
      token_embeddings_(token_embeddings) {
  paper_embeddings_ = MeanEmbedAllDocuments(*token_embeddings_, *corpus);
}

std::vector<float> AvgGloveModel::EmbedQuery(const std::string& query_text) {
  return MeanTokenEmbedding(*token_embeddings_,
                            corpus_->EncodeQuery(query_text));
}

SbertLikeModel::SbertLikeModel(const Dataset* dataset, const Corpus* corpus,
                               const Matrix* token_embeddings, size_t top_m)
    : DenseExpertModel(dataset, corpus, top_m),
      token_embeddings_(token_embeddings) {
  paper_embeddings_ = Matrix(corpus->NumDocuments(), token_embeddings->cols());
  for (size_t doc = 0; doc < corpus->NumDocuments(); ++doc) {
    const std::vector<float> v =
        SifEmbedding(*token_embeddings_, corpus->vocabulary(),
                     corpus->NumDocuments(), corpus->Document(doc));
    std::copy(v.begin(), v.end(), paper_embeddings_.Row(doc).begin());
  }
}

std::vector<float> SbertLikeModel::EmbedQuery(const std::string& query_text) {
  return SifEmbedding(*token_embeddings_, corpus_->vocabulary(),
                      corpus_->NumDocuments(),
                      corpus_->EncodeQuery(query_text));
}

}  // namespace kpef

// Forwarding header: the text-feature helpers moved to
// embed/text_embedding.h so the evaluation harness can use them too.

#ifndef KPEF_BASELINES_TEXT_FEATURES_H_
#define KPEF_BASELINES_TEXT_FEATURES_H_

#include "embed/text_embedding.h"

#endif  // KPEF_BASELINES_TEXT_FEATURES_H_

#include "baselines/g2g.h"

#include <algorithm>

#include "common/rng.h"
#include "embed/trainer.h"

namespace kpef {

G2GModel::G2GModel(const Dataset* dataset, const Corpus* corpus,
                   const HomogeneousProjection* projection,
                   const Matrix* pretrained_tokens, size_t top_m,
                   G2GConfig config)
    : DenseExpertModel(dataset, corpus, top_m) {
  EncoderConfig encoder_config;
  encoder_config.dim = pretrained_tokens->cols();
  encoder_ = std::make_unique<DocumentEncoder>(pretrained_tokens->rows(),
                                               encoder_config);
  encoder_->SetTokenEmbeddings(*pretrained_tokens);

  // Hop-ranking triples: positive = direct neighbor in the merged paper
  // graph, negative = random non-neighbor.
  Rng rng(config.seed);
  const size_t n = corpus->NumDocuments();
  std::vector<Triple> triples;
  triples.reserve(n * config.triples_per_node);
  for (size_t i = 0; i < n; ++i) {
    const auto nbrs = projection->Neighbors(static_cast<int32_t>(i));
    if (nbrs.empty()) continue;
    for (size_t t = 0; t < config.triples_per_node; ++t) {
      const int32_t pos = nbrs[rng.Uniform(nbrs.size())];
      int32_t neg = -1;
      for (int attempt = 0; attempt < 32; ++attempt) {
        const int32_t candidate = static_cast<int32_t>(rng.Uniform(n));
        if (candidate == static_cast<int32_t>(i) || candidate == pos) continue;
        if (!std::binary_search(nbrs.begin(), nbrs.end(), candidate)) {
          neg = candidate;
          break;
        }
      }
      if (neg < 0) continue;
      triples.push_back({pos, static_cast<int32_t>(i), neg});
    }
  }

  TrainerConfig trainer_config;
  trainer_config.epochs = config.epochs;
  trainer_config.margin = config.margin;
  trainer_config.seed = config.seed;
  TripletTrainer trainer(encoder_.get(), corpus);
  trainer.Train(triples, trainer_config);

  paper_embeddings_ = encoder_->EncodeCorpus(*corpus);
}

std::vector<float> G2GModel::EmbedQuery(const std::string& query_text) {
  return encoder_->Encode(corpus_->EncodeQuery(query_text));
}

}  // namespace kpef

#include "baselines/dense_expert_model.h"

#include <algorithm>
#include <numeric>

#include "embed/vector_ops.h"
#include "ranking/top_n_finder.h"

namespace kpef {

std::vector<NodeId> TopPapersByScore(const Dataset& dataset,
                                     const std::vector<float>& scores,
                                     size_t m) {
  const std::vector<NodeId>& papers = dataset.Papers();
  std::vector<size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  const size_t keep = std::min(m, order.size());
  std::partial_sort(order.begin(), order.begin() + keep, order.end(),
                    [&](size_t a, size_t b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;
                    });
  std::vector<NodeId> top;
  top.reserve(keep);
  for (size_t i = 0; i < keep; ++i) top.push_back(papers[order[i]]);
  return top;
}

std::vector<ExpertScore> DenseExpertModel::FindExperts(
    const std::string& query_text, size_t n) {
  const std::vector<float> query = EmbedQuery(query_text);
  std::vector<float> scores(paper_embeddings_.rows(), 0.0f);
  for (size_t i = 0; i < paper_embeddings_.rows(); ++i) {
    scores[i] = CosineSimilarity(paper_embeddings_.Row(i), query);
  }
  const std::vector<NodeId> top_papers =
      TopPapersByScore(*dataset_, scores, top_m_);
  const RankedLists lists =
      BuildRankedLists(dataset_->graph, dataset_->ids.write, top_papers);
  return FullScanTopN(lists, n);
}

}  // namespace kpef

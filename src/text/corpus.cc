#include "text/corpus.h"

#include <unordered_set>

namespace kpef {

size_t Corpus::AddDocument(std::string_view text) {
  const std::vector<std::string> tokens = tokenizer_.Tokenize(text);
  std::vector<TokenId> ids = vocabulary_.EncodeAndAdd(tokens);
  total_tokens_ += ids.size();
  // Document frequency counts each token once per document.
  std::unordered_set<TokenId> unique(ids.begin(), ids.end());
  for (TokenId id : unique) vocabulary_.BumpDocumentFrequency(id);
  documents_.push_back(std::move(ids));
  return documents_.size() - 1;
}

size_t Corpus::AddDocumentFrozen(std::string_view text) {
  std::vector<TokenId> ids = vocabulary_.Encode(tokenizer_.Tokenize(text));
  total_tokens_ += ids.size();
  documents_.push_back(std::move(ids));
  return documents_.size() - 1;
}

std::vector<TokenId> Corpus::EncodeQuery(std::string_view text) const {
  return vocabulary_.Encode(tokenizer_.Tokenize(text));
}

}  // namespace kpef

#include "text/vocabulary.h"

#include <cassert>

namespace kpef {

TokenId Vocabulary::GetOrAdd(std::string_view token) {
  auto it = index_.find(std::string(token));
  if (it != index_.end()) return it->second;
  const TokenId id = static_cast<TokenId>(tokens_.size());
  tokens_.emplace_back(token);
  doc_freq_.push_back(0);
  index_.emplace(tokens_.back(), id);
  return id;
}

TokenId Vocabulary::Lookup(std::string_view token) const {
  auto it = index_.find(std::string(token));
  return it == index_.end() ? kUnknownToken : it->second;
}

void Vocabulary::BumpDocumentFrequency(TokenId id) {
  assert(id >= 0 && static_cast<size_t>(id) < doc_freq_.size());
  ++doc_freq_[id];
}

std::vector<TokenId> Vocabulary::Encode(
    const std::vector<std::string>& tokens) const {
  std::vector<TokenId> ids;
  ids.reserve(tokens.size());
  for (const auto& t : tokens) {
    const TokenId id = Lookup(t);
    if (id != kUnknownToken) ids.push_back(id);
  }
  return ids;
}

std::vector<TokenId> Vocabulary::EncodeAndAdd(
    const std::vector<std::string>& tokens) {
  std::vector<TokenId> ids;
  ids.reserve(tokens.size());
  for (const auto& t : tokens) ids.push_back(GetOrAdd(t));
  return ids;
}

}  // namespace kpef

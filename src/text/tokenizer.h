// Whitespace/punctuation tokenizer with lowercasing and truncation.
//
// Stands in for the paper's WordPiece front-end: it converts a paper's
// textual label L(p) = title + abstract into a bounded token stream fed to
// the document encoder.

#ifndef KPEF_TEXT_TOKENIZER_H_
#define KPEF_TEXT_TOKENIZER_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace kpef {

/// Tokenizer configuration.
struct TokenizerOptions {
  /// Maximum number of tokens per document; the paper truncates at
  /// SciBERT's 512-token limit, we default to the same.
  size_t max_tokens = 512;
  /// Lowercase all tokens (uncased vocabulary).
  bool lowercase = true;
  /// Drop tokens shorter than this many characters.
  size_t min_token_length = 1;
};

/// Splits text into word tokens on any non-alphanumeric character.
class Tokenizer {
 public:
  explicit Tokenizer(TokenizerOptions options = {}) : options_(options) {}

  /// Tokenizes `text`, applying lowercasing, length filtering and
  /// truncation per the options.
  std::vector<std::string> Tokenize(std::string_view text) const;

  const TokenizerOptions& options() const { return options_; }

 private:
  TokenizerOptions options_;
};

}  // namespace kpef

#endif  // KPEF_TEXT_TOKENIZER_H_

// Tokenized document collection: the bridge between raw paper labels
// L(p) = title + abstract and every text model in the library.

#ifndef KPEF_TEXT_CORPUS_H_
#define KPEF_TEXT_CORPUS_H_

#include <string>
#include <string_view>
#include <vector>

#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace kpef {

/// Owns the vocabulary plus one token-id sequence per document.
///
/// Documents are appended in order; the document id is the append index
/// (papers use their paper index, so Corpus doc i == paper i).
class Corpus {
 public:
  explicit Corpus(TokenizerOptions tokenizer_options = {})
      : tokenizer_(tokenizer_options) {}

  /// Tokenizes and appends a document; returns its id. Grows the
  /// vocabulary and updates document frequencies.
  size_t AddDocument(std::string_view text);

  /// Tokenizes and appends a document WITHOUT touching the vocabulary:
  /// tokens are encoded against the frozen vocab (OOV dropped) and
  /// document frequencies are left alone, so a loaded encoder's
  /// vocab_size check keeps holding. Streaming ingestion appends new
  /// papers this way; returns the new document id.
  size_t AddDocumentFrozen(std::string_view text);

  /// Tokenizes `text` against the frozen vocabulary (OOV tokens dropped).
  /// Used for query texts at search time.
  std::vector<TokenId> EncodeQuery(std::string_view text) const;

  size_t NumDocuments() const { return documents_.size(); }
  const std::vector<TokenId>& Document(size_t doc) const {
    return documents_[doc];
  }

  const Vocabulary& vocabulary() const { return vocabulary_; }
  Vocabulary& mutable_vocabulary() { return vocabulary_; }
  const Tokenizer& tokenizer() const { return tokenizer_; }

  /// Total token count over all documents.
  size_t TotalTokens() const { return total_tokens_; }

 private:
  Tokenizer tokenizer_;
  Vocabulary vocabulary_;
  std::vector<std::vector<TokenId>> documents_;
  size_t total_tokens_ = 0;
};

}  // namespace kpef

#endif  // KPEF_TEXT_CORPUS_H_

#include "text/tokenizer.h"

#include <cctype>

namespace kpef {

std::vector<std::string> Tokenizer::Tokenize(std::string_view text) const {
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&]() {
    if (current.size() >= options_.min_token_length &&
        tokens.size() < options_.max_tokens) {
      tokens.push_back(current);
    }
    current.clear();
  };
  for (char ch : text) {
    const unsigned char c = static_cast<unsigned char>(ch);
    if (std::isalnum(c)) {
      current.push_back(options_.lowercase
                            ? static_cast<char>(std::tolower(c))
                            : ch);
    } else {
      flush();
      if (tokens.size() >= options_.max_tokens) return tokens;
    }
  }
  flush();
  return tokens;
}

}  // namespace kpef

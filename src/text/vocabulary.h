// Token <-> id mapping shared by all text models.

#ifndef KPEF_TEXT_VOCABULARY_H_
#define KPEF_TEXT_VOCABULARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace kpef {

/// Integer id of a vocabulary token.
using TokenId = int32_t;

/// Sentinel for out-of-vocabulary tokens.
inline constexpr TokenId kUnknownToken = -1;

/// Append-only bidirectional token <-> id map with document frequencies.
class Vocabulary {
 public:
  Vocabulary() = default;

  /// Returns the id of `token`, adding it if absent.
  TokenId GetOrAdd(std::string_view token);

  /// Returns the id of `token` or kUnknownToken.
  TokenId Lookup(std::string_view token) const;

  /// Returns the token string for a valid id.
  const std::string& TokenOf(TokenId id) const { return tokens_[id]; }

  size_t size() const { return tokens_.size(); }

  /// Increments the document frequency of `id` (call once per document
  /// containing the token).
  void BumpDocumentFrequency(TokenId id);

  /// Number of documents the token appeared in (for IDF weighting).
  int64_t DocumentFrequency(TokenId id) const { return doc_freq_[id]; }

  /// Converts a token stream to ids, dropping OOV tokens.
  std::vector<TokenId> Encode(const std::vector<std::string>& tokens) const;

  /// Converts a token stream to ids, adding unseen tokens to the
  /// vocabulary.
  std::vector<TokenId> EncodeAndAdd(const std::vector<std::string>& tokens);

 private:
  std::unordered_map<std::string, TokenId> index_;
  std::vector<std::string> tokens_;
  std::vector<int64_t> doc_freq_;
};

}  // namespace kpef

#endif  // KPEF_TEXT_VOCABULARY_H_

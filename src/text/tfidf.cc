#include "text/tfidf.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace kpef {
namespace {

SparseVector BuildNormalizedVector(const std::vector<TokenId>& tokens,
                                   const std::vector<float>& idf) {
  std::unordered_map<TokenId, float> counts;
  for (TokenId t : tokens) {
    if (t >= 0 && static_cast<size_t>(t) < idf.size()) counts[t] += 1.0f;
  }
  SparseVector vec;
  vec.reserve(counts.size());
  double norm_sq = 0.0;
  for (const auto& [token, tf] : counts) {
    const float w = tf * idf[token];
    vec.push_back({token, w});
    norm_sq += static_cast<double>(w) * w;
  }
  std::sort(vec.begin(), vec.end(),
            [](const SparseEntry& a, const SparseEntry& b) {
              return a.token < b.token;
            });
  if (norm_sq > 0.0) {
    const float inv = static_cast<float>(1.0 / std::sqrt(norm_sq));
    for (auto& e : vec) e.weight *= inv;
  }
  return vec;
}

}  // namespace

TfIdfModel::TfIdfModel(const Corpus& corpus) {
  const Vocabulary& vocab = corpus.vocabulary();
  const double n_docs = static_cast<double>(corpus.NumDocuments());
  idf_.resize(vocab.size());
  for (size_t t = 0; t < vocab.size(); ++t) {
    const double df = static_cast<double>(
        vocab.DocumentFrequency(static_cast<TokenId>(t)));
    idf_[t] = static_cast<float>(std::log((1.0 + n_docs) / (1.0 + df)) + 1.0);
  }
  doc_vectors_.reserve(corpus.NumDocuments());
  for (size_t d = 0; d < corpus.NumDocuments(); ++d) {
    doc_vectors_.push_back(BuildNormalizedVector(corpus.Document(d), idf_));
  }
}

SparseVector TfIdfModel::Vectorize(const std::vector<TokenId>& tokens) const {
  return BuildNormalizedVector(tokens, idf_);
}

float TfIdfModel::Cosine(const SparseVector& a, const SparseVector& b) {
  double dot = 0.0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].token < b[j].token) {
      ++i;
    } else if (a[i].token > b[j].token) {
      ++j;
    } else {
      dot += static_cast<double>(a[i].weight) * b[j].weight;
      ++i;
      ++j;
    }
  }
  return static_cast<float>(dot);
}

std::vector<float> TfIdfModel::ScoreAll(const SparseVector& query) const {
  std::vector<float> scores(doc_vectors_.size(), 0.0f);
  for (size_t d = 0; d < doc_vectors_.size(); ++d) {
    scores[d] = Cosine(query, doc_vectors_[d]);
  }
  return scores;
}

}  // namespace kpef

// TF-IDF sparse document vectors and cosine similarity.
//
// Implements the TFIDF bag-of-words baseline of Table II and provides the
// sparse text features consumed by the TADW / GVNR-t / G2G baselines.

#ifndef KPEF_TEXT_TFIDF_H_
#define KPEF_TEXT_TFIDF_H_

#include <cstddef>
#include <vector>

#include "text/corpus.h"

namespace kpef {

/// Sparse vector entry: token id and weight.
struct SparseEntry {
  TokenId token;
  float weight;
};

/// L2-normalized sparse vector, entries sorted by token id.
using SparseVector = std::vector<SparseEntry>;

/// Computes TF-IDF vectors for a corpus and scores queries against them.
class TfIdfModel {
 public:
  /// Builds per-document TF-IDF vectors from the corpus.
  /// idf(t) = ln((1 + N) / (1 + df(t))) + 1 (smoothed, always positive),
  /// tf = raw count; vectors are L2-normalized.
  explicit TfIdfModel(const Corpus& corpus);

  /// TF-IDF vector for an arbitrary (already encoded) token stream.
  SparseVector Vectorize(const std::vector<TokenId>& tokens) const;

  const SparseVector& DocumentVector(size_t doc) const {
    return doc_vectors_[doc];
  }
  size_t NumDocuments() const { return doc_vectors_.size(); }

  /// Cosine similarity between two normalized sparse vectors.
  static float Cosine(const SparseVector& a, const SparseVector& b);

  /// Scores the query against every document; returns one similarity per
  /// document (used by the brute-force TFIDF retrieval baseline).
  std::vector<float> ScoreAll(const SparseVector& query) const;

 private:
  std::vector<float> idf_;
  std::vector<SparseVector> doc_vectors_;
};

}  // namespace kpef

#endif  // KPEF_TEXT_TFIDF_H_

#include "sampling/training_data.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"
#include "common/rng.h"
#include "common/timer.h"
#include "metapath/p_neighbor.h"
#include "obs/metrics.h"
#include "obs/pipeline_metrics.h"
#include "obs/trace.h"

namespace kpef {

TrainingDataGenerator::TrainingDataGenerator(const HeteroGraph& graph,
                                             std::vector<MetaPath> paths,
                                             NodeTypeId paper_type)
    : graph_(&graph), paths_(std::move(paths)), paper_type_(paper_type) {
  KPEF_CHECK(!paths_.empty());
  for (const MetaPath& p : paths_) {
    KPEF_CHECK(p.SourceType() == paper_type_ && p.TargetType() == paper_type_)
        << "meta-paths must start and end at the paper type";
  }
}

SamplingResult TrainingDataGenerator::Generate(
    const SamplingConfig& config) const {
  KPEF_TRACE_SPAN("sampling.generate");
  SamplingResult result;
  size_t near_negatives = 0;    // triples whose negative came from D
  size_t random_negatives = 0;  // triples with a random negative
  Rng rng(config.rng_seed);
  const std::vector<NodeId>& papers = graph_->NodesOfType(paper_type_);
  const size_t num_papers = papers.size();
  if (num_papers == 0) return result;

  // (1) Seed papers selection: simple random sample of fraction f. The
  // fraction is clamped to [0, 1] and the count to the population, so
  // seed_fraction >= 1.0 means "every paper seeds" instead of asking
  // SampleWithoutReplacement for more samples than exist.
  const double seed_fraction =
      std::clamp(config.seed_fraction, 0.0, 1.0);
  const size_t num_seeds = std::min<size_t>(
      num_papers,
      std::max<size_t>(1, static_cast<size_t>(
                              seed_fraction *
                              static_cast<double>(num_papers))));
  const std::vector<size_t> seed_indices =
      rng.SampleWithoutReplacement(num_papers, num_seeds);
  result.num_seeds = num_seeds;

  auto as_doc = [&](NodeId paper) {
    return static_cast<int32_t>(graph_->LocalIndex(paper));
  };

  // P-neighbor finders for the no-core configuration (lazily constructed
  // once, reused across seeds).
  std::vector<PNeighborFinder> finders;
  if (!config.use_core) {
    finders.reserve(paths_.size());
    for (const MetaPath& path : paths_) finders.emplace_back(*graph_, path);
  }

  Timer core_timer;
  for (size_t seed_index : seed_indices) {
    const NodeId seed = papers[seed_index];
    core_timer.Restart();
    KPCoreCommunity community;
    if (config.use_core) {
      community = MultiPathKPCoreSearch(*graph_, paths_, seed, config.k,
                                        config.core_options);
    } else {
      // w/o (k, P)-core: the "community" is just the union of the seed's
      // direct P-neighbors, cohesive or not.
      community.seed = seed;
      std::vector<NodeId> nbrs;
      for (PNeighborFinder& finder : finders) {
        const std::vector<NodeId> found = finder.Neighbors(seed);
        nbrs.insert(nbrs.end(), found.begin(), found.end());
      }
      std::sort(nbrs.begin(), nbrs.end());
      nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
      community.core = std::move(nbrs);
    }
    result.core_search_seconds += core_timer.ElapsedSeconds();
    result.edges_scanned += community.edges_scanned;

    // (2) Positive samples: community members other than the seed. When
    // the community dwarfs the positive budget (e.g. P-T-P cores on
    // coarse-topic graphs span nearly the whole corpus), keep the members
    // closest to the seed (BFS discovery order) rather than a uniform
    // subsample — distant members of a giant core carry no seed-specific
    // signal.
    std::vector<NodeId> positives;
    if (!community.core_by_discovery.empty()) {
      for (NodeId member : community.core_by_discovery) {
        if (member != seed) positives.push_back(member);
      }
      for (NodeId member : community.extension) {
        if (member != seed) positives.push_back(member);
      }
    } else {
      for (NodeId member : community.Members()) {
        if (member != seed) positives.push_back(member);
      }
    }
    if (positives.empty()) continue;
    if (positives.size() > config.max_positives_per_seed) {
      positives.resize(config.max_positives_per_seed);
    }
    ++result.num_productive_seeds;
    result.total_positives += positives.size();

    // Membership set for rejection when sampling random negatives: the
    // full community (Definition 7 draws negatives from outside G^k_P,
    // not merely outside the kept positives).
    const std::vector<NodeId> all_members = community.Members();
    std::unordered_set<NodeId> member_set(all_members.begin(),
                                          all_members.end());
    member_set.insert(seed);

    auto sample_random_negative = [&]() -> NodeId {
      // Rejection sampling over all papers; communities are small relative
      // to the corpus so this terminates quickly.
      for (int attempt = 0; attempt < 64; ++attempt) {
        const NodeId candidate = papers[rng.Uniform(num_papers)];
        if (!member_set.count(candidate)) return candidate;
      }
      return kInvalidNode;
    };

    // (3) Triples: s negatives per positive. Near draws rotate through a
    // shuffled copy of D so no single near negative is overused.
    std::vector<NodeId> near_pool(community.near_negatives);
    rng.Shuffle(near_pool);
    size_t near_cursor = 0;
    const size_t near_budget =
        config.max_near_reuse == 0
            ? static_cast<size_t>(-1)
            : near_pool.size() * config.max_near_reuse;
    size_t near_used = 0;
    for (NodeId positive : positives) {
      for (size_t s = 0; s < config.negatives_per_positive; ++s) {
        NodeId negative = kInvalidNode;
        bool from_near = false;
        const bool want_near =
            static_cast<double>(s + 1) <=
            config.near_fraction *
                    static_cast<double>(config.negatives_per_positive) +
                1e-9;
        if (config.strategy == NegativeStrategy::kNear && want_near &&
            !near_pool.empty() && near_used < near_budget) {
          negative = near_pool[near_cursor];
          near_cursor = (near_cursor + 1) % near_pool.size();
          ++near_used;
          from_near = true;
        } else {
          if (config.strategy == NegativeStrategy::kNear) {
            ++result.near_fallbacks;
          }
          negative = sample_random_negative();
        }
        if (negative == kInvalidNode) continue;
        ++(from_near ? near_negatives : random_negatives);
        result.triples.push_back(
            {as_doc(positive), as_doc(seed), as_doc(negative)});
      }
    }
  }
  KPEF_COUNTER_ADD(obs::kSamplingSeedsTotal, result.num_seeds);
  KPEF_COUNTER_ADD(obs::kSamplingTriplesTotal, result.triples.size());
  KPEF_COUNTER_ADD(obs::kSamplingNearNegativesTotal, near_negatives);
  KPEF_COUNTER_ADD(obs::kSamplingRandomNegativesTotal, random_negatives);
  KPEF_LOG(Info) << "sampled " << result.triples.size() << " triples from "
                 << result.num_productive_seeds << "/" << result.num_seeds
                 << " productive seeds";
  return result;
}

}  // namespace kpef

#include "sampling/training_data.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"
#include "common/rng.h"
#include "common/timer.h"
#include "metapath/p_neighbor.h"
#include "obs/metrics.h"
#include "obs/pipeline_metrics.h"
#include "obs/trace.h"

namespace kpef {
namespace {

// Everything one seed contributes, accumulated thread-locally and merged
// in seed order so Generate's output is bit-identical for any worker
// count (same contract as the PG-Index build: per-item RNG streams via
// MixSeed plus an ordered merge).
struct SeedOutput {
  std::vector<Triple> triples;
  uint64_t edges_scanned = 0;
  double core_search_seconds = 0.0;
  size_t positives = 0;
  size_t near_fallbacks = 0;
  size_t near_negatives = 0;
  size_t random_negatives = 0;
  bool productive = false;
};

}  // namespace

TrainingDataGenerator::TrainingDataGenerator(const HeteroGraph& graph,
                                             std::vector<MetaPath> paths,
                                             NodeTypeId paper_type)
    : graph_(&graph), paths_(std::move(paths)), paper_type_(paper_type) {
  KPEF_CHECK(!paths_.empty());
  for (const MetaPath& p : paths_) {
    KPEF_CHECK(p.SourceType() == paper_type_ && p.TargetType() == paper_type_)
        << "meta-paths must start and end at the paper type";
  }
}

SamplingResult TrainingDataGenerator::Generate(
    const SamplingConfig& config) const {
  KPEF_TRACE_SPAN("sampling.generate");
  SamplingResult result;
  Rng rng(config.rng_seed);
  const std::vector<NodeId>& papers = graph_->NodesOfType(paper_type_);
  const size_t num_papers = papers.size();
  if (num_papers == 0) return result;

  // (1) Seed papers selection: simple random sample of fraction f. The
  // fraction is clamped to [0, 1] and the count to the population, so
  // seed_fraction >= 1.0 means "every paper seeds" instead of asking
  // SampleWithoutReplacement for more samples than exist.
  const double seed_fraction = std::clamp(config.seed_fraction, 0.0, 1.0);
  const size_t num_seeds = std::min<size_t>(
      num_papers,
      std::max<size_t>(
          1, static_cast<size_t>(seed_fraction *
                                 static_cast<double>(num_papers))));
  const std::vector<size_t> seed_indices =
      rng.SampleWithoutReplacement(num_papers, num_seeds);
  result.num_seeds = num_seeds;

  ThreadPool& pool = config.pool != nullptr ? *config.pool
                                            : ThreadPool::Default();

  // Materialize one CSR projection per meta-path so the per-seed searches
  // read flat rows instead of re-walking the heterogeneous graph. One
  // cumulative byte budget covers all paths; blowing it abandons
  // materialization entirely — the finder path produces the same triples,
  // just slower.
  std::vector<HomogeneousProjection> projections;
  bool use_projection = config.use_projection;
  if (use_projection) {
    Timer build_timer;
    size_t used_bytes = 0;
    for (const MetaPath& path : paths_) {
      ProjectionOptions options;
      options.pool = &pool;
      if (config.projection_budget_bytes > 0) {
        if (used_bytes >= config.projection_budget_bytes) {
          use_projection = false;
          break;
        }
        options.max_bytes = config.projection_budget_bytes - used_bytes;
      }
      std::optional<HomogeneousProjection> projection =
          TryProjectHomogeneous(*graph_, path, options);
      if (!projection.has_value()) {
        use_projection = false;
        break;
      }
      used_bytes += projection->MemoryUsageBytes();
      projections.push_back(*std::move(projection));
    }
    result.projection_build_seconds = build_timer.ElapsedSeconds();
    if (use_projection) {
      result.projection_bytes = used_bytes;
    } else {
      projections.clear();
      KPEF_LOG(Info) << "projection budget exceeded; falling back to "
                        "finder-backed sampling";
    }
  }
  result.used_projection = use_projection;

  auto as_doc = [&](NodeId paper) {
    return static_cast<int32_t>(graph_->LocalIndex(paper));
  };

  // The no-core finder configuration needs per-worker PNeighborFinders
  // (their BFS stamps are not thread-safe); core-mode finder searches
  // construct their own finders per call.
  const bool needs_finders = !use_projection && !config.use_core;

  // One seed end to end. All randomness comes from a stream derived from
  // (rng_seed, position): draw order inside a seed is fixed, and streams
  // never interact, so scheduling cannot change the output.
  auto process_seed = [&](size_t position,
                          std::vector<PNeighborFinder>* finders,
                          SeedOutput& out) {
    const NodeId seed = papers[seed_indices[position]];
    Rng seed_rng(MixSeed(config.rng_seed, 1, position));
    Timer core_timer;
    KPCoreCommunity community;
    if (config.use_core) {
      community =
          use_projection
              ? MultiPathKPCoreSearch(*graph_, projections, seed, config.k,
                                      config.core_options)
              : MultiPathKPCoreSearch(*graph_, paths_, seed, config.k,
                                      config.core_options);
    } else {
      // w/o (k, P)-core: the "community" is just the union of the seed's
      // direct P-neighbors, cohesive or not.
      community.seed = seed;
      std::vector<NodeId> nbrs;
      if (use_projection) {
        const int32_t local = static_cast<int32_t>(graph_->LocalIndex(seed));
        for (const HomogeneousProjection& projection : projections) {
          for (int32_t u : projection.Neighbors(local)) {
            nbrs.push_back(projection.GlobalId(u));
          }
          community.edges_scanned +=
              static_cast<uint64_t>(projection.Degree(local));
        }
      } else {
        for (PNeighborFinder& finder : *finders) {
          const uint64_t before = finder.edges_scanned();
          const std::vector<NodeId> found = finder.Neighbors(seed);
          nbrs.insert(nbrs.end(), found.begin(), found.end());
          community.edges_scanned += finder.edges_scanned() - before;
        }
      }
      std::sort(nbrs.begin(), nbrs.end());
      nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
      community.core = std::move(nbrs);
    }
    out.core_search_seconds = core_timer.ElapsedSeconds();
    out.edges_scanned = community.edges_scanned;

    // (2) Positive samples: community members other than the seed. When
    // the community dwarfs the positive budget (e.g. P-T-P cores on
    // coarse-topic graphs span nearly the whole corpus), keep the members
    // closest to the seed (BFS discovery order) rather than a uniform
    // subsample — distant members of a giant core carry no seed-specific
    // signal.
    std::vector<NodeId> positives;
    if (!community.core_by_discovery.empty()) {
      for (NodeId member : community.core_by_discovery) {
        if (member != seed) positives.push_back(member);
      }
      for (NodeId member : community.extension) {
        if (member != seed) positives.push_back(member);
      }
    } else {
      for (NodeId member : community.Members()) {
        if (member != seed) positives.push_back(member);
      }
    }
    if (positives.empty()) return;
    if (positives.size() > config.max_positives_per_seed) {
      positives.resize(config.max_positives_per_seed);
    }
    out.productive = true;
    out.positives = positives.size();

    // Membership set for rejection when sampling random negatives: the
    // full community (Definition 7 draws negatives from outside G^k_P,
    // not merely outside the kept positives).
    const std::vector<NodeId> all_members = community.Members();
    std::unordered_set<NodeId> member_set(all_members.begin(),
                                          all_members.end());
    member_set.insert(seed);

    auto sample_random_negative = [&]() -> NodeId {
      // Rejection sampling over all papers; communities are small relative
      // to the corpus so this terminates quickly.
      for (int attempt = 0; attempt < 64; ++attempt) {
        const NodeId candidate = papers[seed_rng.Uniform(num_papers)];
        if (!member_set.count(candidate)) return candidate;
      }
      return kInvalidNode;
    };

    // (3) Triples: s negatives per positive. Near draws rotate through a
    // shuffled copy of D so no single near negative is overused.
    std::vector<NodeId> near_pool(community.near_negatives);
    seed_rng.Shuffle(near_pool);
    size_t near_cursor = 0;
    const size_t near_budget =
        config.max_near_reuse == 0
            ? static_cast<size_t>(-1)
            : near_pool.size() * config.max_near_reuse;
    size_t near_used = 0;
    for (NodeId positive : positives) {
      for (size_t s = 0; s < config.negatives_per_positive; ++s) {
        NodeId negative = kInvalidNode;
        bool from_near = false;
        const bool want_near =
            config.strategy == NegativeStrategy::kNear &&
            static_cast<double>(s + 1) <=
                config.near_fraction *
                        static_cast<double>(config.negatives_per_positive) +
                    1e-9;
        if (want_near && !near_pool.empty() && near_used < near_budget) {
          negative = near_pool[near_cursor];
          near_cursor = (near_cursor + 1) % near_pool.size();
          ++near_used;
          from_near = true;
        } else {
          // Only a draw that asked for a near negative and couldn't get
          // one is a fallback; draws random by plan (near_fraction) or by
          // strategy are not.
          if (want_near) ++out.near_fallbacks;
          negative = sample_random_negative();
        }
        if (negative == kInvalidNode) continue;
        ++(from_near ? out.near_negatives : out.random_negatives);
        out.triples.push_back(
            {as_doc(positive), as_doc(seed), as_doc(negative)});
      }
    }
  };

  auto make_finders = [&] {
    std::vector<PNeighborFinder> finders;
    if (needs_finders) {
      finders.reserve(paths_.size());
      for (const MetaPath& path : paths_) finders.emplace_back(*graph_, path);
    }
    return finders;
  };

  size_t workers = pool.num_threads();
  if (config.num_threads > 0) workers = std::min(workers, config.num_threads);
  std::vector<SeedOutput> outputs(num_seeds);
  if (workers <= 1 || num_seeds <= 1) {
    std::vector<PNeighborFinder> finders = make_finders();
    for (size_t i = 0; i < num_seeds; ++i) {
      process_seed(i, &finders, outputs[i]);
    }
  } else {
    ParallelForChunks(
        pool, num_seeds,
        [&](size_t begin, size_t end) {
          std::vector<PNeighborFinder> finders = make_finders();
          for (size_t i = begin; i < end; ++i) {
            process_seed(i, &finders, outputs[i]);
          }
        },
        workers);
    KPEF_COUNTER_ADD(obs::kSamplingSeedsParallel, num_seeds);
  }

  // Seed-ordered merge: concatenation order is the seed-draw order, never
  // the completion order.
  size_t near_negatives = 0;    // triples whose negative came from D
  size_t random_negatives = 0;  // triples with a random negative
  size_t total_triples = 0;
  for (const SeedOutput& out : outputs) total_triples += out.triples.size();
  result.triples.reserve(total_triples);
  for (SeedOutput& out : outputs) {
    result.num_productive_seeds += out.productive ? 1 : 0;
    result.total_positives += out.positives;
    result.near_fallbacks += out.near_fallbacks;
    result.edges_scanned += out.edges_scanned;
    result.core_search_seconds += out.core_search_seconds;
    near_negatives += out.near_negatives;
    random_negatives += out.random_negatives;
    result.triples.insert(result.triples.end(), out.triples.begin(),
                          out.triples.end());
  }
  KPEF_COUNTER_ADD(obs::kSamplingSeedsTotal, result.num_seeds);
  KPEF_COUNTER_ADD(obs::kSamplingTriplesTotal, result.triples.size());
  KPEF_COUNTER_ADD(obs::kSamplingNearNegativesTotal, near_negatives);
  KPEF_COUNTER_ADD(obs::kSamplingRandomNegativesTotal, random_negatives);
  KPEF_LOG(Info) << "sampled " << result.triples.size() << " triples from "
                 << result.num_productive_seeds << "/" << result.num_seeds
                 << " productive seeds";
  return result;
}

}  // namespace kpef

// Sampling-based training-data generation (§III-B): seed-paper selection,
// positive collection from (k, P)-core communities, and the two negative
// strategies (Random / Near).

#ifndef KPEF_SAMPLING_TRAINING_DATA_H_
#define KPEF_SAMPLING_TRAINING_DATA_H_

#include <cstdint>
#include <vector>

#include "common/thread_pool.h"
#include "embed/triplet.h"
#include "graph/hetero_graph.h"
#include "kpcore/kpcore_search.h"
#include "kpcore/multi_path.h"
#include "metapath/meta_path.h"
#include "metapath/projection.h"

namespace kpef {

/// Negative-sample collection strategy of §III-B.
enum class NegativeStrategy {
  /// Uniform over papers outside the community.
  kRandom,
  /// Papers from Algorithm 1's delete queue D: close to the community but
  /// excluded by the k-constraint.
  kNear,
};

struct SamplingConfig {
  /// Fraction f of papers drawn as seed papers.
  double seed_fraction = 0.3;
  /// Core cohesiveness k.
  int32_t k = 4;
  /// When false, skip the (k, P)-core entirely: positives are random
  /// direct P-neighbors of the seed (the "w/o (k, P)-core" configuration
  /// of Table IV, exhibiting the free-rider noise the core removes).
  bool use_core = true;
  NegativeStrategy strategy = NegativeStrategy::kNear;
  /// Negatives per positive (the paper's s; s = 3 is the sweet spot).
  size_t negatives_per_positive = 3;
  /// Near strategy: maximum times one delete-queue paper may be drawn per
  /// community before the sampler falls back to random negatives. At the
  /// paper's scale D is large and repeats are rare; at ours, unbounded
  /// reuse would push each (possibly borderline-relevant) D member away
  /// dozens of times and poison the embedding. 0 = unbounded.
  size_t max_near_reuse = 2;
  /// Near strategy: fraction of each positive's negatives drawn from the
  /// delete queue; the remainder are random. Hard negatives sharpen
  /// community boundaries but, without a strong pre-trained geometry,
  /// hard-only training collapses distant regions (a standard triplet-
  /// mining failure); blending keeps the global structure intact.
  double near_fraction = 1.0;
  /// Cap on positives taken from one community. The paper notes cores are
  /// "usually small"; this bounds the rare giant community (e.g. P-T-P
  /// with coarse topics) so training stays near-linear.
  size_t max_positives_per_seed = 128;
  uint64_t rng_seed = 123;
  KPCoreSearchOptions core_options;
  /// Materialize one CSR projection per meta-path up front and run every
  /// community search over them instead of per-seed meta-path BFS. The
  /// searches are bit-identical either way (see kpcore/neighbor_source.h),
  /// so this is purely a time/space trade.
  bool use_projection = true;
  /// Cumulative cap on the bytes all per-path projections may occupy;
  /// exceeding it abandons materialization and falls back to the
  /// finder-backed path. 0 = unlimited.
  size_t projection_budget_bytes = 0;
  /// Pool for projection builds and the parallel seed loop; nullptr uses
  /// ThreadPool::Default().
  ThreadPool* pool = nullptr;
  /// Caps workers for the seed loop: 0 = full pool width, 1 = sequential.
  /// Triples are bit-identical for every value (per-seed RNG streams +
  /// seed-ordered merge).
  size_t num_threads = 0;
};

/// Generated triples plus bookkeeping for the sensitivity benchmarks.
struct SamplingResult {
  std::vector<Triple> triples;
  size_t num_seeds = 0;
  /// Seeds whose community contained at least one usable positive.
  size_t num_productive_seeds = 0;
  size_t total_positives = 0;
  /// Draws that wanted a near negative (per near_fraction) but fell back
  /// to random because the delete queue was empty or its reuse budget was
  /// exhausted. Draws that were random by plan do not count.
  size_t near_fallbacks = 0;
  uint64_t edges_scanned = 0;
  double core_search_seconds = 0.0;
  /// Whether the run searched materialized projections (false: the
  /// config disabled them or the byte budget rejected a build).
  bool used_projection = false;
  /// Total bytes held by the per-path projections (0 when not used).
  size_t projection_bytes = 0;
  double projection_build_seconds = 0.0;
};

/// Generates triplet training data from (k, P)-core communities.
///
/// Document ids inside the produced triples are paper LocalIndex values,
/// i.e. corpus document ids.
class TrainingDataGenerator {
 public:
  /// `paths` holds one or more meta-paths; multiple paths activate the §V
  /// intersection.
  TrainingDataGenerator(const HeteroGraph& graph, std::vector<MetaPath> paths,
                        NodeTypeId paper_type);

  SamplingResult Generate(const SamplingConfig& config) const;

 private:
  const HeteroGraph* graph_;
  std::vector<MetaPath> paths_;
  NodeTypeId paper_type_;
};

}  // namespace kpef

#endif  // KPEF_SAMPLING_TRAINING_DATA_H_

// Exact k-nearest-neighbor search by full scan. Serves as (a) the
// "w/o PG-Index" configuration of the efficiency study (Figure 7) and
// (b) ground truth for PG-Index recall tests.

#ifndef KPEF_ANN_BRUTE_FORCE_H_
#define KPEF_ANN_BRUTE_FORCE_H_

#include <span>
#include <vector>

#include "ann/neighbor.h"
#include "embed/matrix.h"

namespace kpef {

/// Returns the `k` points of `points` nearest to `query` under L2
/// distance, ascending by distance.
std::vector<Neighbor> BruteForceSearch(const Matrix& points,
                                       std::span<const float> query, size_t k);

/// Fraction of `truth` ids present in `result` (recall@|truth|).
double ComputeRecall(const std::vector<Neighbor>& result,
                     const std::vector<Neighbor>& truth);

}  // namespace kpef

#endif  // KPEF_ANN_BRUTE_FORCE_H_

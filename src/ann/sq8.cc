#include "ann/sq8.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "embed/vector_ops.h"

namespace kpef {

namespace {
constexpr size_t kCodeStrideBytes = kCacheLineBytes;

size_t PadToCodeStride(size_t cols) {
  return (cols + kCodeStrideBytes - 1) / kCodeStrideBytes * kCodeStrideBytes;
}
}  // namespace

Sq8Codes Sq8Codes::Encode(const Matrix& points) {
  Sq8Codes out;
  out.rows_ = points.rows();
  out.cols_ = points.cols();
  out.stride_ = PadToCodeStride(points.cols());
  if (out.rows_ == 0 || out.cols_ == 0) {
    out.stride_ = std::max<size_t>(out.stride_, kCodeStrideBytes);
    out.mins_.assign(out.stride_, 0.0f);
    out.steps_.assign(out.stride_, 0.0f);
    return out;
  }
  const size_t d = out.cols_;
  // Per-dimension min/max: an order-independent reduction, so the codes
  // of a row do not depend on where the row sits in the matrix.
  std::vector<float> lo(d, points.At(0, 0)), hi(d, points.At(0, 0));
  for (size_t k = 0; k < d; ++k) lo[k] = hi[k] = points.At(0, k);
  for (size_t r = 1; r < out.rows_; ++r) {
    const auto row = points.Row(r);
    for (size_t k = 0; k < d; ++k) {
      lo[k] = std::min(lo[k], row[k]);
      hi[k] = std::max(hi[k], row[k]);
    }
  }
  out.mins_.assign(out.stride_, 0.0f);
  out.steps_.assign(out.stride_, 0.0f);
  for (size_t k = 0; k < d; ++k) {
    out.mins_[k] = lo[k];
    const float range = hi[k] - lo[k];
    out.steps_[k] = range > 0.0f ? range / 255.0f : 0.0f;
  }
  out.codes_.assign(out.rows_ * out.stride_, 0);
  for (size_t r = 0; r < out.rows_; ++r) {
    const auto row = points.Row(r);
    uint8_t* codes = out.codes_.data() + r * out.stride_;
    for (size_t k = 0; k < d; ++k) {
      if (out.steps_[k] == 0.0f) continue;  // constant dim -> code 0
      const float scaled = (row[k] - out.mins_[k]) / out.steps_[k];
      const float rounded = std::nearbyintf(scaled);
      codes[k] = static_cast<uint8_t>(
          std::clamp(rounded, 0.0f, 255.0f));
    }
  }
  return out;
}

Sq8Codes Sq8Codes::FromParts(size_t rows, size_t cols,
                             std::span<const float> mins,
                             std::span<const float> steps,
                             std::span<const uint8_t> dense) {
  KPEF_CHECK(mins.size() >= cols && steps.size() >= cols);
  KPEF_CHECK(dense.size() >= rows * cols);
  Sq8Codes out;
  out.rows_ = rows;
  out.cols_ = cols;
  out.stride_ = std::max(PadToCodeStride(cols), kCodeStrideBytes);
  out.mins_.assign(out.stride_, 0.0f);
  out.steps_.assign(out.stride_, 0.0f);
  for (size_t k = 0; k < cols; ++k) {
    out.mins_[k] = mins[k];
    out.steps_[k] = steps[k];
  }
  out.codes_.assign(rows * out.stride_, 0);
  for (size_t r = 0; r < rows; ++r) {
    std::copy_n(dense.data() + r * cols, cols,
                out.codes_.data() + r * out.stride_);
  }
  return out;
}

Sq8Codes Sq8Codes::Permuted(const Sq8Codes& src,
                            std::span<const int32_t> order) {
  KPEF_CHECK(order.size() == src.rows_);
  Sq8Codes out;
  out.rows_ = src.rows_;
  out.cols_ = src.cols_;
  out.stride_ = src.stride_;
  out.mins_ = src.mins_;
  out.steps_ = src.steps_;
  out.codes_.assign(src.codes_.size(), 0);
  for (size_t r = 0; r < out.rows_; ++r) {
    std::copy_n(src.codes_.data() +
                    static_cast<size_t>(order[r]) * src.stride_,
                src.stride_, out.codes_.data() + r * out.stride_);
  }
  return out;
}

void Sq8Codes::AppendRow(std::span<const float> values) {
  KPEF_CHECK(values.size() == cols_);
  codes_.resize((rows_ + 1) * stride_, 0);
  uint8_t* codes = codes_.data() + rows_ * stride_;
  for (size_t k = 0; k < cols_; ++k) {
    if (steps_[k] == 0.0f) continue;  // constant dim -> code 0
    const float scaled = (values[k] - mins_[k]) / steps_[k];
    const float rounded = std::nearbyintf(scaled);
    codes[k] = static_cast<uint8_t>(std::clamp(rounded, 0.0f, 255.0f));
  }
  ++rows_;
}

void Sq8Codes::PrepareQuery(std::span<const float> padded_query,
                            AlignedVector& qt) const {
  KPEF_CHECK(padded_query.size() >= cols_);
  qt.assign(stride_, 0.0f);
  for (size_t k = 0; k < cols_; ++k) qt[k] = padded_query[k] - mins_[k];
}

float Sq8Codes::AsymmetricSquaredL2(std::span<const float> qt,
                                    size_t r) const {
  return Sq8AsymmetricSquaredL2(qt, steps(), Row(r));
}

void Sq8Codes::DecodeRow(size_t r, std::span<float> out) const {
  KPEF_CHECK(out.size() >= cols_);
  const uint8_t* codes = codes_.data() + r * stride_;
  for (size_t k = 0; k < cols_; ++k) {
    out[k] = mins_[k] + steps_[k] * static_cast<float>(codes[k]);
  }
}

size_t Sq8Codes::MemoryUsageBytes() const {
  return codes_.size() * sizeof(uint8_t) +
         (mins_.size() + steps_.size()) * sizeof(float);
}

}  // namespace kpef

#include "ann/nndescent.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "ann/brute_force.h"
#include "ann/stamp_set.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "embed/vector_ops.h"

namespace kpef {
namespace {

// One StampSet (ann/stamp_set.h) lives per worker thread, so the
// per-insert duplicate check costs one array probe instead of the
// former O(k) linear scan of the heap.
StampSet& LocalStamps() {
  static thread_local StampSet stamps;
  return stamps;
}

// Bounded neighbor heap with "new" flags, as in the NNDescent paper.
// Distances are squared L2 throughout the build (monotone in the true
// distance, so comparisons agree); BuildKnnGraph takes sqrt on output.
struct HeapEntry {
  Neighbor neighbor;
  bool is_new = true;
};

class NeighborHeap {
 public:
  explicit NeighborHeap(size_t capacity) : capacity_(capacity) {}

  /// Worst (largest) kept distance, or +inf while below capacity: any
  /// candidate strictly closer than this would change the heap.
  float WorstOrInf() const {
    return entries_.size() < capacity_
               ? std::numeric_limits<float>::infinity()
               : entries_.front().neighbor.distance;
  }

  /// Inserts if closer than the current worst; returns true on change.
  /// The caller must have deduplicated `id` against current entries
  /// (StampSet); re-offering an evicted id is safe because its distance
  /// can never beat the then-current worst.
  bool Insert(int32_t id, float distance) {
    if (entries_.size() < capacity_) {
      entries_.push_back({{id, distance}, true});
      std::push_heap(entries_.begin(), entries_.end(), Cmp);
      return true;
    }
    if (distance >= entries_.front().neighbor.distance) return false;
    std::pop_heap(entries_.begin(), entries_.end(), Cmp);
    entries_.back() = {{id, distance}, true};
    std::push_heap(entries_.begin(), entries_.end(), Cmp);
    return true;
  }

  std::vector<HeapEntry>& entries() { return entries_; }
  const std::vector<HeapEntry>& entries() const { return entries_; }

 private:
  static bool Cmp(const HeapEntry& a, const HeapEntry& b) {
    return a.neighbor < b.neighbor;  // max-heap on distance
  }

  size_t capacity_;
  std::vector<HeapEntry> entries_;
};

// One candidate produced by a local join: "offer `id` at `distance` to
// node `target`'s heap".
struct Update {
  int32_t target;
  int32_t id;
  float distance;
};

}  // namespace

KnnGraph BuildKnnGraph(const Matrix& points, const NNDescentConfig& config) {
  const size_t n = points.rows();
  KnnGraph result;
  result.neighbors.resize(n);
  if (n == 0) return result;
  const size_t k = std::min(config.k, n - 1);
  if (k == 0) return result;
  // The pool may be shared with concurrent callers (e.g. serving
  // traffic): every ParallelFor below joins its own TaskGroup, so this
  // build neither waits on foreign tasks nor blocks them, and it is
  // safe even when invoked from inside another pool task.
  ThreadPool& pool = config.pool != nullptr ? *config.pool
                                            : ThreadPool::Default();

  auto squared = [&](int32_t a, int32_t b) {
    return SquaredL2Distance(points.PaddedRow(a), points.PaddedRow(b));
  };

  // Per-node distance-computation tallies: each parallel stage writes
  // only its own slot, and the serial sum at the end is independent of
  // how work was scheduled.
  std::vector<uint64_t> dist_by_node(n, 0);

  // --- Random initialization: each node fills its own heap from its own
  // RNG stream, so nodes are independent and order-free.
  std::vector<NeighborHeap> heaps(n, NeighborHeap(k));
  ParallelFor(pool, n, [&](size_t v) {
    Rng rng(MixSeed(config.seed, 0, v));
    StampSet& stamps = LocalStamps();
    stamps.Begin(n);
    stamps.TestAndSet(static_cast<int32_t>(v));
    uint64_t dists = 0;
    for (size_t attempts = 0; heaps[v].entries().size() < k && attempts < 4 * k;
         ++attempts) {
      const int32_t u = static_cast<int32_t>(rng.Uniform(n));
      if (stamps.TestAndSet(u)) continue;
      ++dists;
      heaps[v].Insert(u, squared(static_cast<int32_t>(v), u));
    }
    dist_by_node[v] = dists;
  });

  std::vector<std::vector<int32_t>> new_cands(n), old_cands(n);
  std::vector<std::vector<Update>> emitted(n);
  std::vector<uint32_t> changed_by_node(n, 0);
  std::vector<size_t> bucket_start;
  std::vector<Update> buckets;
  for (size_t iter = 0; iter < config.max_iterations; ++iter) {
    result.iterations_run = iter + 1;
    // Collect forward candidates and clear "new" flags (serial: O(n k)).
    for (auto& c : new_cands) c.clear();
    for (auto& c : old_cands) c.clear();
    for (size_t v = 0; v < n; ++v) {
      for (HeapEntry& e : heaps[v].entries()) {
        auto& bucket = e.is_new ? new_cands[v] : old_cands[v];
        bucket.push_back(e.neighbor.id);
        e.is_new = false;
      }
    }
    // Add reverse candidates (serial: O(edges), no distance work).
    for (size_t v = 0; v < n; ++v) {
      for (int32_t u : std::vector<int32_t>(new_cands[v])) {
        new_cands[u].push_back(static_cast<int32_t>(v));
      }
      for (int32_t u : std::vector<int32_t>(old_cands[v])) {
        old_cands[u].push_back(static_cast<int32_t>(v));
      }
    }
    // Local join, parallel over nodes. Each node only reads the shared
    // heaps (for the pruning bound) and writes its own candidate lists
    // and `emitted` slot, so chunking cannot change the output.
    ParallelFor(pool, n, [&](size_t v) {
      auto& nc = new_cands[v];
      auto& oc = old_cands[v];
      std::sort(nc.begin(), nc.end());
      nc.erase(std::unique(nc.begin(), nc.end()), nc.end());
      std::sort(oc.begin(), oc.end());
      oc.erase(std::unique(oc.begin(), oc.end()), oc.end());
      if (nc.size() > config.max_candidates ||
          oc.size() > config.max_candidates) {
        Rng rng(MixSeed(config.seed, 2 * iter + 1, v));
        if (nc.size() > config.max_candidates) {
          rng.Shuffle(nc);
          nc.resize(config.max_candidates);
        }
        if (oc.size() > config.max_candidates) {
          rng.Shuffle(oc);
          oc.resize(config.max_candidates);
        }
      }
      auto& out = emitted[v];
      out.clear();
      uint64_t dists = 0;
      auto offer = [&](int32_t target, int32_t id, float d) {
        // Prune against the target heap's pre-iteration bound; the
        // authoritative check happens at apply time.
        if (d < heaps[target].WorstOrInf()) out.push_back({target, id, d});
      };
      // Local join: new x new and new x old.
      for (size_t i = 0; i < nc.size(); ++i) {
        for (size_t j = i + 1; j < nc.size(); ++j) {
          ++dists;
          const float d = squared(nc[i], nc[j]);
          offer(nc[i], nc[j], d);
          offer(nc[j], nc[i], d);
        }
        for (int32_t u : oc) {
          if (u == nc[i]) continue;
          ++dists;
          const float d = squared(nc[i], u);
          offer(nc[i], u, d);
          offer(u, nc[i], d);
        }
      }
      dist_by_node[v] += dists;
    });
    // Bucket updates by target heap, preserving emitting-node order
    // (serial counting sort: O(updates) moves, no distance work).
    bucket_start.assign(n + 1, 0);
    for (const auto& from_v : emitted) {
      for (const Update& u : from_v) ++bucket_start[u.target + 1];
    }
    std::partial_sum(bucket_start.begin(), bucket_start.end(),
                     bucket_start.begin());
    buckets.resize(bucket_start[n]);
    {
      std::vector<size_t> cursor(bucket_start.begin(), bucket_start.end() - 1);
      for (const auto& from_v : emitted) {
        for (const Update& u : from_v) buckets[cursor[u.target]++] = u;
      }
    }
    // Apply, parallel over target heaps: each task owns one heap and
    // applies its bucket in deterministic order.
    ParallelFor(pool, n, [&](size_t u) {
      const size_t begin = bucket_start[u];
      const size_t end = bucket_start[u + 1];
      if (begin == end) {
        changed_by_node[u] = 0;
        return;
      }
      StampSet& stamps = LocalStamps();
      stamps.Begin(n);
      for (const HeapEntry& e : heaps[u].entries()) {
        stamps.TestAndSet(e.neighbor.id);
      }
      uint32_t changed = 0;
      for (size_t i = begin; i < end; ++i) {
        const Update& upd = buckets[i];
        if (stamps.TestAndSet(upd.id)) continue;
        changed += heaps[u].Insert(upd.id, upd.distance);
      }
      changed_by_node[u] = changed;
    });
    uint64_t updates = 0;
    for (uint32_t c : changed_by_node) updates += c;
    if (static_cast<double>(updates) <
        config.delta * static_cast<double>(n) * static_cast<double>(k)) {
      break;
    }
  }

  for (size_t v = 0; v < n; ++v) {
    auto& out = result.neighbors[v];
    out.reserve(heaps[v].entries().size());
    for (const HeapEntry& e : heaps[v].entries()) {
      out.push_back({e.neighbor.id, std::sqrt(e.neighbor.distance)});
    }
    std::sort(out.begin(), out.end());
  }
  for (uint64_t d : dist_by_node) result.distance_computations += d;
  return result;
}

KnnGraph BuildExactKnnGraph(const Matrix& points, size_t k) {
  KnnGraph result;
  const size_t n = points.rows();
  result.neighbors.resize(n);
  for (size_t v = 0; v < n; ++v) {
    // k+1 because the point itself comes back at distance zero.
    std::vector<Neighbor> knn = BruteForceSearch(points, points.Row(v), k + 1);
    for (const Neighbor& nb : knn) {
      if (nb.id == static_cast<int32_t>(v)) continue;
      if (result.neighbors[v].size() >= k) break;
      result.neighbors[v].push_back(nb);
    }
    result.distance_computations += n;
  }
  return result;
}

double KnnGraphRecall(const Matrix& points, const KnnGraph& graph) {
  const size_t n = points.rows();
  if (n == 0) return 1.0;
  double total = 0.0;
  for (size_t v = 0; v < n; ++v) {
    const size_t k = graph.neighbors[v].size();
    if (k == 0) {
      total += 1.0;
      continue;
    }
    std::vector<Neighbor> truth =
        BruteForceSearch(points, points.Row(v), k + 1);
    std::vector<Neighbor> filtered;
    for (const Neighbor& nb : truth) {
      if (nb.id != static_cast<int32_t>(v) && filtered.size() < k) {
        filtered.push_back(nb);
      }
    }
    total += ComputeRecall(graph.neighbors[v], filtered);
  }
  return total / static_cast<double>(n);
}

}  // namespace kpef

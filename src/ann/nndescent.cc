#include "ann/nndescent.h"

#include <algorithm>

#include "ann/brute_force.h"
#include "common/logging.h"
#include "common/rng.h"
#include "embed/vector_ops.h"

namespace kpef {
namespace {

// Bounded neighbor heap with "new" flags, as in the NNDescent paper.
struct HeapEntry {
  Neighbor neighbor;
  bool is_new = true;
};

class NeighborHeap {
 public:
  explicit NeighborHeap(size_t capacity) : capacity_(capacity) {}

  // Inserts if closer than the current worst; returns true on change.
  bool Insert(int32_t id, float distance) {
    for (const HeapEntry& e : entries_) {
      if (e.neighbor.id == id) return false;
    }
    if (entries_.size() < capacity_) {
      entries_.push_back({{id, distance}, true});
      std::push_heap(entries_.begin(), entries_.end(), Cmp);
      return true;
    }
    if (distance >= entries_.front().neighbor.distance) return false;
    std::pop_heap(entries_.begin(), entries_.end(), Cmp);
    entries_.back() = {{id, distance}, true};
    std::push_heap(entries_.begin(), entries_.end(), Cmp);
    return true;
  }

  std::vector<HeapEntry>& entries() { return entries_; }
  const std::vector<HeapEntry>& entries() const { return entries_; }

 private:
  static bool Cmp(const HeapEntry& a, const HeapEntry& b) {
    return a.neighbor < b.neighbor;  // max-heap on distance
  }

  size_t capacity_;
  std::vector<HeapEntry> entries_;
};

}  // namespace

KnnGraph BuildKnnGraph(const Matrix& points, const NNDescentConfig& config) {
  const size_t n = points.rows();
  KnnGraph result;
  result.neighbors.resize(n);
  if (n == 0) return result;
  const size_t k = std::min(config.k, n - 1);
  if (k == 0) return result;

  Rng rng(config.seed);
  uint64_t dist_count = 0;
  auto distance = [&](int32_t a, int32_t b) {
    ++dist_count;
    return L2Distance(points.Row(a), points.Row(b));
  };

  // Random initialization.
  std::vector<NeighborHeap> heaps(n, NeighborHeap(k));
  for (size_t v = 0; v < n; ++v) {
    for (size_t attempts = 0; heaps[v].entries().size() < k && attempts < 4 * k;
         ++attempts) {
      const int32_t u = static_cast<int32_t>(rng.Uniform(n));
      if (u == static_cast<int32_t>(v)) continue;
      heaps[v].Insert(u, distance(static_cast<int32_t>(v), u));
    }
  }

  std::vector<std::vector<int32_t>> new_cands(n), old_cands(n);
  for (size_t iter = 0; iter < config.max_iterations; ++iter) {
    result.iterations_run = iter + 1;
    // Collect forward candidates and clear "new" flags.
    for (auto& c : new_cands) c.clear();
    for (auto& c : old_cands) c.clear();
    for (size_t v = 0; v < n; ++v) {
      for (HeapEntry& e : heaps[v].entries()) {
        auto& bucket = e.is_new ? new_cands[v] : old_cands[v];
        bucket.push_back(e.neighbor.id);
        e.is_new = false;
      }
    }
    // Add reverse candidates.
    for (size_t v = 0; v < n; ++v) {
      for (int32_t u : std::vector<int32_t>(new_cands[v])) {
        new_cands[u].push_back(static_cast<int32_t>(v));
      }
      for (int32_t u : std::vector<int32_t>(old_cands[v])) {
        old_cands[u].push_back(static_cast<int32_t>(v));
      }
    }
    size_t updates = 0;
    for (size_t v = 0; v < n; ++v) {
      auto& nc = new_cands[v];
      auto& oc = old_cands[v];
      std::sort(nc.begin(), nc.end());
      nc.erase(std::unique(nc.begin(), nc.end()), nc.end());
      std::sort(oc.begin(), oc.end());
      oc.erase(std::unique(oc.begin(), oc.end()), oc.end());
      if (nc.size() > config.max_candidates) {
        rng.Shuffle(nc);
        nc.resize(config.max_candidates);
      }
      if (oc.size() > config.max_candidates) {
        rng.Shuffle(oc);
        oc.resize(config.max_candidates);
      }
      // Local join: new x new and new x old.
      for (size_t i = 0; i < nc.size(); ++i) {
        for (size_t j = i + 1; j < nc.size(); ++j) {
          const float d = distance(nc[i], nc[j]);
          updates += heaps[nc[i]].Insert(nc[j], d);
          updates += heaps[nc[j]].Insert(nc[i], d);
        }
        for (int32_t u : oc) {
          if (u == nc[i]) continue;
          const float d = distance(nc[i], u);
          updates += heaps[nc[i]].Insert(u, d);
          updates += heaps[u].Insert(nc[i], d);
        }
      }
    }
    if (static_cast<double>(updates) <
        config.delta * static_cast<double>(n) * static_cast<double>(k)) {
      break;
    }
  }

  for (size_t v = 0; v < n; ++v) {
    auto& out = result.neighbors[v];
    for (const HeapEntry& e : heaps[v].entries()) out.push_back(e.neighbor);
    std::sort(out.begin(), out.end());
  }
  result.distance_computations = dist_count;
  return result;
}

KnnGraph BuildExactKnnGraph(const Matrix& points, size_t k) {
  KnnGraph result;
  const size_t n = points.rows();
  result.neighbors.resize(n);
  for (size_t v = 0; v < n; ++v) {
    // k+1 because the point itself comes back at distance zero.
    std::vector<Neighbor> knn = BruteForceSearch(points, points.Row(v), k + 1);
    for (const Neighbor& nb : knn) {
      if (nb.id == static_cast<int32_t>(v)) continue;
      if (result.neighbors[v].size() >= k) break;
      result.neighbors[v].push_back(nb);
    }
    result.distance_computations += n;
  }
  return result;
}

double KnnGraphRecall(const Matrix& points, const KnnGraph& graph) {
  const size_t n = points.rows();
  if (n == 0) return 1.0;
  double total = 0.0;
  for (size_t v = 0; v < n; ++v) {
    const size_t k = graph.neighbors[v].size();
    if (k == 0) {
      total += 1.0;
      continue;
    }
    KnnGraph exact;  // only need row v; reuse helper lazily
    std::vector<Neighbor> truth =
        BruteForceSearch(points, points.Row(v), k + 1);
    std::vector<Neighbor> filtered;
    for (const Neighbor& nb : truth) {
      if (nb.id != static_cast<int32_t>(v) && filtered.size() < k) {
        filtered.push_back(nb);
      }
    }
    total += ComputeRecall(graph.neighbors[v], filtered);
  }
  return total / static_cast<double>(n);
}

}  // namespace kpef

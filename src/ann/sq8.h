// SQ8 scalar quantization of an embedding matrix for the PG-Index hot
// path (DESIGN.md §12).
//
// Each dimension d gets an affine code: value ≈ min[d] + code * step[d]
// with step[d] = (max[d] - min[d]) / 255, so a row of D floats shrinks
// to D bytes (4x less traffic through the traversal loop). Code rows are
// stored in a dense matrix whose rows start on 64-byte (cache line)
// boundaries; the row stride is padded to a multiple of 64 bytes and the
// padding codes are zero.
//
// Distances against a float query use the *asymmetric* form: the query
// stays fp32, only the stored points are quantized. PrepareQuery folds
// the per-dimension mins into the query once (qt = q - min), after which
// one code-row distance is sum_d (qt[d] - step[d] * code[d])^2 — the
// sq8_asym_l2 entry of the dispatched DistanceKernel. The mins/steps
// arrays are padded to the code stride with zeros, so padded tail
// elements contribute exact zero terms and the kernel runs tail-free.
//
// Quantization is deterministic: per-dimension min/max are order
//-independent reductions and each code depends only on its own value,
// so encoding a row-permuted matrix equals permuting the encoded rows.

#ifndef KPEF_ANN_SQ8_H_
#define KPEF_ANN_SQ8_H_

#include <cstddef>
#include <cstdint>
#include <span>

#include "common/aligned_buffer.h"
#include "embed/matrix.h"

namespace kpef {

class Sq8Codes {
 public:
  Sq8Codes() = default;

  /// Quantizes every row of `points`. Constant dimensions (max == min)
  /// get step 0 and code 0, decoding exactly to the constant.
  static Sq8Codes Encode(const Matrix& points);

  /// Rebuilds a code matrix from serialized parts: per-dimension
  /// mins/steps (cols values each) and a dense rows*cols code array.
  static Sq8Codes FromParts(size_t rows, size_t cols,
                            std::span<const float> mins,
                            std::span<const float> steps,
                            std::span<const uint8_t> dense);

  /// Row-permuted copy: row i of the result is row order[i] of `src`
  /// (the PG-Index BFS relabeling applied to pre-encoded codes).
  static Sq8Codes Permuted(const Sq8Codes& src,
                           std::span<const int32_t> order);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  /// Bytes (= codes) per row: cols padded up to a multiple of 64.
  size_t stride() const { return stride_; }
  bool empty() const { return rows_ == 0; }

  /// The full stride-wide code row (64-byte aligned; padding codes 0).
  std::span<const uint8_t> Row(size_t r) const {
    return {codes_.data() + r * stride_, stride_};
  }
  const uint8_t* RowPtr(size_t r) const { return codes_.data() + r * stride_; }

  /// Per-dimension dequantization arrays, padded to stride() with zeros.
  std::span<const float> mins() const { return {mins_.data(), mins_.size()}; }
  std::span<const float> steps() const {
    return {steps_.data(), steps_.size()};
  }

  /// Encodes and appends one row (values.size() must equal cols) against
  /// the EXISTING per-dimension mins/steps — the scales are frozen at
  /// Encode() time. Values outside the original [min, max] range clamp to
  /// code 0/255; the traversal stays admissible because the exact fp32
  /// rerank corrects any extra quantization error on appended points.
  void AppendRow(std::span<const float> values);

  /// Fills `qt` (resized to stride()) with query[d] - min[d]; tail zero.
  /// `padded_query` must hold at least cols() values.
  void PrepareQuery(std::span<const float> padded_query,
                    AlignedVector& qt) const;

  /// Squared L2 between a prepared query and code row `r`, via the
  /// dispatched kernel (bit-identical across scalar/AVX2 paths).
  float AsymmetricSquaredL2(std::span<const float> qt, size_t r) const;

  /// Dequantizes row `r` into `out` (cols() values).
  void DecodeRow(size_t r, std::span<float> out) const;

  /// Largest possible |value - decode(encode(value))| in dimension `d`:
  /// half a step plus rounding slack (tests assert against a full step).
  float StepOf(size_t d) const { return steps_[d]; }

  size_t MemoryUsageBytes() const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  size_t stride_ = 0;
  AlignedByteVector codes_;
  AlignedVector mins_;   // stride_ floats, tail zeros
  AlignedVector steps_;  // stride_ floats, tail zeros
};

}  // namespace kpef

#endif  // KPEF_ANN_SQ8_H_

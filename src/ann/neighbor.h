// Shared neighbor record for the ANN structures.

#ifndef KPEF_ANN_NEIGHBOR_H_
#define KPEF_ANN_NEIGHBOR_H_

#include <cstdint>

namespace kpef {

/// A candidate point with its distance to some query/anchor.
struct Neighbor {
  int32_t id = -1;
  float distance = 0.0f;

  bool operator<(const Neighbor& other) const {
    if (distance != other.distance) return distance < other.distance;
    return id < other.id;
  }
  bool operator>(const Neighbor& other) const { return other < *this; }
  bool operator==(const Neighbor& other) const {
    return id == other.id && distance == other.distance;
  }
};

}  // namespace kpef

#endif  // KPEF_ANN_NEIGHBOR_H_

// Hierarchical Navigable Small World (HNSW) index.
//
// An alternative ANN index to the paper's PG-Index (cited in its related
// work via the graph-ANN survey [35]). The PG-Index flattens "highway"
// edges into a single layer; HNSW stacks coarser layers instead. Provided
// as an extension so the retrieval stage can be ablated against a second
// graph index (bench_pgindex_search compares them).

#ifndef KPEF_ANN_HNSW_H_
#define KPEF_ANN_HNSW_H_

#include <cstdint>
#include <span>
#include <vector>

#include "ann/neighbor.h"
#include "embed/matrix.h"

namespace kpef {

struct HnswConfig {
  /// Max neighbors per node on layers > 0 (layer 0 gets 2x).
  size_t m = 12;
  /// Candidate-pool size during construction.
  size_t ef_construction = 100;
  /// Level multiplier; expected #layers ~ ln(n) * level_multiplier.
  double level_multiplier = 0.0;  // 0 = 1/ln(m)
  uint64_t seed = 1234;
};

struct HnswBuildStats {
  double build_seconds = 0.0;
  uint64_t distance_computations = 0;
  size_t num_layers = 0;
  size_t edges_total = 0;
};

/// HNSW over the rows of a Matrix, L2 distance. Build is sequential
/// (insert order = row order, deterministic under the config seed).
class Hnsw {
 public:
  struct SearchStats {
    uint64_t distance_computations = 0;
    uint64_t hops = 0;
  };

  static Hnsw Build(const Matrix& points, const HnswConfig& config,
                    HnswBuildStats* stats = nullptr);

  /// Approximate k nearest neighbors, ascending by distance. `ef` is the
  /// layer-0 candidate pool (clamped up to k).
  std::vector<Neighbor> Search(std::span<const float> query, size_t k,
                               size_t ef = 0,
                               SearchStats* stats = nullptr) const;

  size_t NumPoints() const { return points_.rows(); }
  size_t NumLayers() const { return layers_.size(); }
  int32_t entry_point() const { return entry_point_; }
  size_t NumEdges() const;
  size_t MemoryUsageBytes() const;

  /// Neighbors of `node` on `layer` (testing / inspection).
  const std::vector<int32_t>& NeighborsOf(size_t layer, int32_t node) const {
    return layers_[layer][node];
  }

 private:
  Hnsw() = default;

  // Greedy descent to the closest node on a layer (ef = 1).
  int32_t GreedyClosest(std::span<const float> query, int32_t start,
                        size_t layer, uint64_t& dist_count) const;
  // Best-first search on one layer with a bounded pool.
  std::vector<Neighbor> SearchLayer(std::span<const float> query,
                                    int32_t start, size_t layer, size_t ef,
                                    uint64_t& dist_count,
                                    uint64_t* hops) const;
  // Occlusion pruning identical in spirit to the PG-Index refinement.
  std::vector<int32_t> SelectNeighbors(int32_t node,
                                       std::vector<Neighbor> candidates,
                                       size_t max_degree,
                                       uint64_t& dist_count) const;

  Matrix points_;
  // layers_[l][node] = adjacency on layer l; nodes absent from a layer
  // have empty lists and node_level_[node] < l.
  std::vector<std::vector<std::vector<int32_t>>> layers_;
  std::vector<int32_t> node_level_;
  int32_t entry_point_ = -1;
  size_t max_degree_base_ = 0;
};

}  // namespace kpef

#endif  // KPEF_ANN_HNSW_H_

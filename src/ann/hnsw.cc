#include "ann/hnsw.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/aligned_buffer.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/timer.h"
#include "embed/vector_ops.h"

namespace kpef {

// The internal search/selection helpers all work in squared L2 over
// padded spans (monotone in the true distance, so every comparison is
// unchanged); Hnsw::Search converts to true L2 at the API boundary.

int32_t Hnsw::GreedyClosest(std::span<const float> query, int32_t start,
                            size_t layer, uint64_t& dist_count) const {
  int32_t current = start;
  ++dist_count;
  float current_dist = SquaredL2Distance(points_.PaddedRow(current), query);
  for (;;) {
    bool improved = false;
    for (int32_t u : layers_[layer][current]) {
      ++dist_count;
      const float d = SquaredL2Distance(points_.PaddedRow(u), query);
      if (d < current_dist) {
        current = u;
        current_dist = d;
        improved = true;
      }
    }
    if (!improved) return current;
  }
}

std::vector<Neighbor> Hnsw::SearchLayer(std::span<const float> query,
                                        int32_t start, size_t layer,
                                        size_t ef, uint64_t& dist_count,
                                        uint64_t* hops) const {
  std::priority_queue<Neighbor, std::vector<Neighbor>, std::greater<Neighbor>>
      candidates;
  std::priority_queue<Neighbor> pool;  // worst on top
  std::vector<char> visited(points_.rows(), 0);
  ++dist_count;
  const Neighbor entry{start,
                       SquaredL2Distance(points_.PaddedRow(start), query)};
  candidates.push(entry);
  pool.push(entry);
  visited[start] = 1;
  while (!candidates.empty()) {
    const Neighbor current = candidates.top();
    candidates.pop();
    if (pool.size() >= ef && current.distance > pool.top().distance) break;
    if (hops) ++(*hops);
    for (int32_t u : layers_[layer][current.id]) {
      if (visited[u]) continue;
      visited[u] = 1;
      ++dist_count;
      const Neighbor next{u, SquaredL2Distance(points_.PaddedRow(u), query)};
      if (pool.size() < ef || next.distance < pool.top().distance) {
        candidates.push(next);
        pool.push(next);
        if (pool.size() > ef) pool.pop();
      }
    }
  }
  std::vector<Neighbor> result;
  result.reserve(pool.size());
  while (!pool.empty()) {
    result.push_back(pool.top());
    pool.pop();
  }
  std::reverse(result.begin(), result.end());
  return result;
}

std::vector<int32_t> Hnsw::SelectNeighbors(int32_t node,
                                           std::vector<Neighbor> candidates,
                                           size_t max_degree,
                                           uint64_t& dist_count) const {
  std::sort(candidates.begin(), candidates.end());
  std::vector<Neighbor> kept;
  for (const Neighbor& y : candidates) {
    if (y.id == node) continue;
    if (kept.size() >= max_degree) break;
    bool occluded = false;
    for (const Neighbor& x : kept) {
      ++dist_count;
      if (SquaredL2Distance(points_.PaddedRow(x.id), points_.PaddedRow(y.id)) <=
          y.distance) {
        occluded = true;
        break;
      }
    }
    if (!occluded) kept.push_back(y);
  }
  std::vector<int32_t> out;
  out.reserve(kept.size());
  for (const Neighbor& nb : kept) out.push_back(nb.id);
  return out;
}

Hnsw Hnsw::Build(const Matrix& points, const HnswConfig& config,
                 HnswBuildStats* stats) {
  Timer timer;
  Hnsw index;
  index.points_ = points;
  index.max_degree_base_ = config.m;
  const size_t n = points.rows();
  index.node_level_.assign(n, 0);
  HnswBuildStats local_stats;
  if (n == 0) {
    if (stats) *stats = local_stats;
    return index;
  }

  Rng rng(config.seed);
  const double mult = config.level_multiplier > 0.0
                          ? config.level_multiplier
                          : 1.0 / std::log(static_cast<double>(
                                std::max<size_t>(2, config.m)));
  // Pre-draw levels to size the layer structure.
  int32_t top_level = 0;
  for (size_t v = 0; v < n; ++v) {
    const double u = std::max(1e-12, rng.UniformDouble());
    index.node_level_[v] = static_cast<int32_t>(-std::log(u) * mult);
    top_level = std::max(top_level, index.node_level_[v]);
  }
  index.layers_.assign(top_level + 1,
                       std::vector<std::vector<int32_t>>(n));

  uint64_t dist_count = 0;
  index.entry_point_ = 0;
  int32_t current_top = index.node_level_[0];
  for (size_t v = 1; v < n; ++v) {
    const auto query = points.PaddedRow(v);
    const int32_t level = index.node_level_[v];
    int32_t entry = index.entry_point_;
    // Descend through layers above the node's level greedily.
    for (int32_t l = current_top; l > level; --l) {
      entry = index.GreedyClosest(query, entry, static_cast<size_t>(l),
                                  dist_count);
    }
    // Insert on each layer from min(level, current_top) down to 0.
    for (int32_t l = std::min(level, current_top); l >= 0; --l) {
      const size_t layer = static_cast<size_t>(l);
      std::vector<Neighbor> found = index.SearchLayer(
          query, entry, layer, config.ef_construction, dist_count, nullptr);
      entry = found.empty() ? entry : found[0].id;
      const size_t max_degree = l == 0 ? 2 * config.m : config.m;
      std::vector<int32_t> selected = index.SelectNeighbors(
          static_cast<int32_t>(v), found, max_degree, dist_count);
      index.layers_[layer][v] = selected;
      // Connect back, re-pruning neighbors that overflow.
      for (int32_t u : selected) {
        auto& back = index.layers_[layer][u];
        back.push_back(static_cast<int32_t>(v));
        if (back.size() > max_degree) {
          std::vector<Neighbor> candidates;
          candidates.reserve(back.size());
          for (int32_t w : back) {
            ++dist_count;
            candidates.push_back(
                {w, SquaredL2Distance(points.PaddedRow(u),
                                      points.PaddedRow(w))});
          }
          back = index.SelectNeighbors(u, std::move(candidates), max_degree,
                                       dist_count);
        }
      }
    }
    if (level > current_top) {
      current_top = level;
      index.entry_point_ = static_cast<int32_t>(v);
    }
  }
  // Trim unused top layers (possible when the max-level node is node 0).
  while (index.layers_.size() > static_cast<size_t>(current_top) + 1) {
    index.layers_.pop_back();
  }

  local_stats.build_seconds = timer.ElapsedSeconds();
  local_stats.distance_computations = dist_count;
  local_stats.num_layers = index.layers_.size();
  local_stats.edges_total = index.NumEdges();
  if (stats) *stats = local_stats;
  return index;
}

std::vector<Neighbor> Hnsw::Search(std::span<const float> query, size_t k,
                                   size_t ef, SearchStats* stats) const {
  std::vector<Neighbor> result;
  if (points_.rows() == 0 || k == 0) return result;
  const AlignedVector padded = PadToAligned(query);
  const std::span<const float> q(padded.data(), padded.size());
  SearchStats local_stats;
  int32_t entry = entry_point_;
  for (size_t l = layers_.size(); l-- > 1;) {
    entry = GreedyClosest(q, entry, l, local_stats.distance_computations);
  }
  result = SearchLayer(q, entry, 0, std::max(ef, k),
                       local_stats.distance_computations, &local_stats.hops);
  if (result.size() > k) result.resize(k);
  for (Neighbor& nb : result) nb.distance = std::sqrt(nb.distance);
  if (stats) *stats = local_stats;
  return result;
}

size_t Hnsw::NumEdges() const {
  size_t total = 0;
  for (const auto& layer : layers_) {
    for (const auto& nbrs : layer) total += nbrs.size();
  }
  return total;
}

size_t Hnsw::MemoryUsageBytes() const {
  size_t bytes = points_.PaddedSize() * sizeof(float) +
                 node_level_.size() * sizeof(int32_t);
  for (const auto& layer : layers_) {
    for (const auto& nbrs : layer) {
      bytes += nbrs.size() * sizeof(int32_t) + sizeof(std::vector<int32_t>);
    }
  }
  return bytes;
}

}  // namespace kpef

#include "ann/brute_force.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/aligned_buffer.h"
#include "embed/vector_ops.h"

namespace kpef {

std::vector<Neighbor> BruteForceSearch(const Matrix& points,
                                       std::span<const float> query,
                                       size_t k) {
  // Pad the query once so every row comparison runs the tail-free kernel
  // path; the scan compares squared distances and takes sqrt only on the
  // k survivors.
  const AlignedVector padded = PadToAligned(query);
  const std::span<const float> q(padded.data(), padded.size());
  std::vector<Neighbor> heap;  // max-heap on distance, size <= k
  heap.reserve(k + 1);
  auto cmp = [](const Neighbor& a, const Neighbor& b) { return a < b; };
  for (size_t i = 0; i < points.rows(); ++i) {
    const float dist = SquaredL2Distance(points.PaddedRow(i), q);
    if (heap.size() < k) {
      heap.push_back({static_cast<int32_t>(i), dist});
      std::push_heap(heap.begin(), heap.end(), cmp);
    } else if (!heap.empty() && dist < heap.front().distance) {
      std::pop_heap(heap.begin(), heap.end(), cmp);
      heap.back() = {static_cast<int32_t>(i), dist};
      std::push_heap(heap.begin(), heap.end(), cmp);
    }
  }
  std::sort_heap(heap.begin(), heap.end(), cmp);
  for (Neighbor& nb : heap) nb.distance = std::sqrt(nb.distance);
  return heap;
}

double ComputeRecall(const std::vector<Neighbor>& result,
                     const std::vector<Neighbor>& truth) {
  if (truth.empty()) return 1.0;
  std::unordered_set<int32_t> found;
  found.reserve(result.size() * 2);
  for (const Neighbor& n : result) found.insert(n.id);
  size_t hits = 0;
  for (const Neighbor& n : truth) hits += found.count(n.id);
  return static_cast<double>(hits) / static_cast<double>(truth.size());
}

}  // namespace kpef

// NNDescent [36]: approximate kNN-graph construction by iterative
// neighbor-of-neighbor refinement. Initializes the PG-Index (Algorithm 2,
// lines 3-6).
//
// The build is parallel and deterministic: every stochastic choice draws
// from a per-node RNG seeded by (config.seed, iteration, node), local
// joins emit candidate updates into per-node buffers, and updates are
// applied per target heap in a fixed order — so the resulting graph is
// bit-identical for any thread-pool size, including 1.

#ifndef KPEF_ANN_NNDESCENT_H_
#define KPEF_ANN_NNDESCENT_H_

#include <cstdint>
#include <vector>

#include "ann/neighbor.h"
#include "embed/matrix.h"

namespace kpef {

class ThreadPool;

struct NNDescentConfig {
  /// Neighbors kept per point (the kNN graph's k).
  size_t k = 10;
  size_t max_iterations = 12;
  /// Stop when fewer than delta * n * k neighbor updates happen in an
  /// iteration.
  double delta = 0.001;
  /// Cap on candidates considered per point per iteration.
  size_t max_candidates = 50;
  uint64_t seed = 17;
  /// Pool the build fans out over; nullptr = ThreadPool::Default().
  /// The output does not depend on the pool's size, and the pool may be
  /// shared with concurrent work (each loop joins its own TaskGroup).
  ThreadPool* pool = nullptr;
};

/// Result: per-point nearest-neighbor lists sorted ascending by distance,
/// plus convergence diagnostics.
struct KnnGraph {
  std::vector<std::vector<Neighbor>> neighbors;
  size_t iterations_run = 0;
  uint64_t distance_computations = 0;
};

/// Builds an approximate kNN graph over the rows of `points`.
KnnGraph BuildKnnGraph(const Matrix& points, const NNDescentConfig& config);

/// Builds the exact kNN graph by brute force (testing aid; quadratic).
KnnGraph BuildExactKnnGraph(const Matrix& points, size_t k);

/// Mean recall of `graph` against the exact kNN graph (testing aid).
double KnnGraphRecall(const Matrix& points, const KnnGraph& graph);

}  // namespace kpef

#endif  // KPEF_ANN_NNDESCENT_H_

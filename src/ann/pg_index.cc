#include "ann/pg_index.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <unordered_set>
#include <utility>

#include "ann/stamp_set.h"
#include "common/aligned_buffer.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "embed/vector_ops.h"
#include "obs/metrics.h"
#include "obs/pipeline_metrics.h"
#include "obs/trace.h"

namespace kpef {

namespace {

// Pull a whole point row into cache ahead of its distance evaluation.
inline void PrefetchBytes(const void* p, size_t bytes) {
#if defined(__GNUC__) || defined(__clang__)
  const char* c = static_cast<const char*>(p);
  for (size_t off = 0; off < bytes; off += kCacheLineBytes) {
    __builtin_prefetch(c + off, /*rw=*/0, /*locality=*/3);
  }
#else
  (void)p;
  (void)bytes;
#endif
}

}  // namespace

// Per-query bindings of one lockstep group search.
struct PGIndex::GroupSlot {
  std::span<const float> query;  // padded fp32 row (stride-wide)
  SearchStats* stats = nullptr;
  std::vector<Neighbor>* out = nullptr;
  size_t pool_occupancy = 0;  // pool size at termination (histogram)
};

// Thread-local scratch reused across searches: per-slot visited stamps,
// heap storage, and prepared SQ8 queries, plus shared work lists. A
// steady-state search allocates nothing.
struct PGIndex::SearchArena {
  // One row to score in pass B of a lockstep round: node's code row
  // against run_slots[begin, begin + count).
  struct ScoreRun {
    int32_t node;
    uint32_t begin;
    uint32_t count;
  };

  std::vector<VisitedBitset> visited;
  std::vector<std::vector<Neighbor>> cand;  // min-heaps (std::greater)
  std::vector<std::vector<Neighbor>> pool;  // max-heaps (worst on top)
  std::vector<AlignedVector> qt;            // prepared SQ8 queries
  std::vector<std::pair<int32_t, uint32_t>> expand;  // (node, slot)
  std::vector<std::pair<uint32_t, uint32_t>> groups;  // [begin, end) in expand
  std::vector<ScoreRun> runs;               // pass A -> pass B worklist
  std::vector<uint32_t> run_slots;          // flat slot lists for runs
  std::vector<Neighbor> rerank;
  // Base+overlay concatenation scratch (used only while inserts pend;
  // two buffers because the visited-warm lookahead and pass A's walk of
  // an earlier group interleave within one round).
  std::vector<int32_t> merged;
  std::vector<int32_t> merged_warm;

  void Prepare(size_t slots) {
    if (visited.size() < slots) {
      visited.resize(slots);
      cand.resize(slots);
      pool.resize(slots);
      qt.resize(slots);
    }
  }
};

namespace {

// Replaces the top of a full max-heap pool with a strictly better
// element: one sift-down instead of push_heap + pop_heap. The heap
// holds the same element set either way (the displaced top is exactly
// what pop_heap would remove), but at half the comparison/move cost —
// which matters because on a full pool every improving candidate of
// the navigating node's highway scan takes this path.
inline void ReplaceHeapTop(std::vector<Neighbor>& heap, Neighbor next) {
  const size_t n = heap.size();
  size_t i = 0;
  for (;;) {
    size_t c = 2 * i + 1;
    if (c >= n) break;
    if (c + 1 < n && heap[c] < heap[c + 1]) ++c;
    if (!(next < heap[c])) break;
    heap[i] = heap[c];
    i = c;
  }
  heap[i] = next;
}

}  // namespace

PGIndex::SearchArena& PGIndex::LocalArena() {
  static thread_local SearchArena arena;
  return arena;
}

PGIndex PGIndex::Build(const Matrix& points, const PGIndexConfig& config,
                       PGIndexBuildStats* stats) {
  KPEF_TRACE_SPAN("pgindex.build");
  Timer total_timer;
  PGIndex index;
  index.rerank_factor_ = std::max(1.0, config.rerank_factor);
  const size_t n = points.rows();
  const size_t d = points.cols();
  PGIndexBuildStats local_stats;
  if (n == 0) {
    index.points_ = points;
    index.adj_offsets_.assign(1, 0);
    if (stats) *stats = local_stats;
    return index;
  }
  ThreadPool& pool = config.nndescent.pool != nullptr
                         ? *config.nndescent.pool
                         : ThreadPool::Default();
  // The graph is built over *external* ids (row numbers of `points`);
  // FinalizeLayout at the end relabels everything into the cache-aware
  // internal order.
  std::vector<std::vector<int32_t>> adjacency(n);
  int32_t navigating = -1;
  // All hot-loop distances below are squared L2 over padded rows: the
  // square root is monotone, so every comparison (argmin, sort, occlusion
  // check) is unchanged, and padded rows let the kernel run tail-free.
  auto squared = [&](int32_t a, int32_t b) {
    return SquaredL2Distance(points.PaddedRow(a), points.PaddedRow(b));
  };

  // --- Navigating node selection (lines 1-2): nearest to the centroid.
  // The centroid sum stays serial (row order matters for float rounding);
  // the argmin fans out over fixed-size chunks whose per-chunk winners
  // merge serially, so the choice is independent of the pool size.
  AlignedVector centroid(points.stride(), 0.0f);
  for (size_t i = 0; i < n; ++i) {
    auto row = points.Row(i);
    for (size_t k = 0; k < d; ++k) centroid[k] += row[k];
  }
  for (size_t k = 0; k < d; ++k) centroid[k] /= static_cast<float>(n);
  {
    const std::span<const float> centroid_span(centroid.data(),
                                               centroid.size());
    constexpr size_t kArgminChunk = 2048;
    const size_t num_chunks = (n + kArgminChunk - 1) / kArgminChunk;
    std::vector<Neighbor> chunk_best(num_chunks, Neighbor{-1, 0.0f});
    ParallelFor(pool, num_chunks, [&](size_t c) {
      const size_t begin = c * kArgminChunk;
      const size_t end = std::min(n, begin + kArgminChunk);
      Neighbor best{-1, 0.0f};
      for (size_t i = begin; i < end; ++i) {
        const Neighbor cand{static_cast<int32_t>(i),
                            SquaredL2Distance(points.PaddedRow(i),
                                              centroid_span)};
        if (best.id < 0 || cand < best) best = cand;
      }
      chunk_best[c] = best;
    });
    Neighbor best{-1, 0.0f};
    for (const Neighbor& cand : chunk_best) {
      if (cand.id >= 0 && (best.id < 0 || cand < best)) best = cand;
    }
    navigating = best.id;
    local_stats.distance_computations += n;
  }

  // --- Initialize kNN graph (lines 3-6); NNDescent shares the pool.
  Timer knn_timer;
  KnnGraph knn = config.exact_knn
                     ? BuildExactKnnGraph(points, config.knn_k)
                     : BuildKnnGraph(points, [&] {
                         NNDescentConfig c = config.nndescent;
                         c.k = config.knn_k;
                         c.pool = &pool;
                         return c;
                       }());
  local_stats.knn_seconds = knn_timer.ElapsedSeconds();
  local_stats.distance_computations += knn.distance_computations;
  KPEF_COUNTER_ADD(obs::kPgindexNndescentIterations, knn.iterations_run);
  for (const auto& nbrs : knn.neighbors) {
    local_stats.edges_after_knn += nbrs.size();
  }

  // --- Refine neighbors: long-distance extension + occlusion pruning,
  // parallel over nodes (each node reads the shared kNN graph and writes
  // only its own adjacency list and tally slots).
  Timer refine_timer;
  std::vector<uint64_t> refine_dists(n, 0);
  std::vector<uint32_t> extension_edges(n, 0);
  ParallelFor(pool, n, [&](size_t p) {
    uint64_t dist_count = 0;
    auto distance = [&](int32_t a, int32_t b) {
      ++dist_count;
      return squared(a, b);
    };
    // Long-distance neighbors extension (lines 7-8): N(p) plus N(x) for
    // every x in N(p). Seed distances come from the kNN graph (true L2),
    // so square them to stay comparable.
    std::vector<Neighbor> candidates;
    candidates.reserve(knn.neighbors[p].size());
    for (const Neighbor& nb : knn.neighbors[p]) {
      candidates.push_back({nb.id, nb.distance * nb.distance});
    }
    if (config.extend_neighbors) {
      std::unordered_set<int32_t> seen;
      seen.insert(static_cast<int32_t>(p));
      for (const Neighbor& nb : knn.neighbors[p]) seen.insert(nb.id);
      for (const Neighbor& x : knn.neighbors[p]) {
        for (const Neighbor& y : knn.neighbors[x.id]) {
          if (seen.insert(y.id).second) {
            candidates.push_back(
                {y.id, distance(static_cast<int32_t>(p), y.id)});
          }
        }
      }
    }
    std::sort(candidates.begin(), candidates.end());
    extension_edges[p] = static_cast<uint32_t>(candidates.size());

    // Redundant neighbors removal (lines 9-12): scanning nearest-first,
    // drop y when some kept x satisfies δ(x, y) <= δ(y, p).
    auto& out = adjacency[p];
    out.clear();
    if (config.remove_redundant) {
      std::vector<Neighbor> kept;
      for (const Neighbor& y : candidates) {
        if (kept.size() >= config.max_degree) break;
        bool redundant = false;
        for (const Neighbor& x : kept) {
          if (distance(x.id, y.id) <= y.distance) {
            redundant = true;
            break;
          }
        }
        if (!redundant) kept.push_back(y);
      }
      out.reserve(kept.size());
      for (const Neighbor& nb : kept) out.push_back(nb.id);
    } else {
      const size_t limit = std::min(candidates.size(), config.max_degree);
      out.reserve(limit);
      for (size_t i = 0; i < limit; ++i) out.push_back(candidates[i].id);
    }
    refine_dists[p] = dist_count;
  });
  for (size_t p = 0; p < n; ++p) {
    local_stats.edges_after_extension += extension_edges[p];
    local_stats.distance_computations += refine_dists[p];
  }
  local_stats.refine_seconds = refine_timer.ElapsedSeconds();

  // --- Reverse-edge pass: occlusion pruning keeps *out*-edges only, so
  // the directed graph fragments at scale — a large fraction of nodes
  // ends up with no in-edge from the navigating node's component, and
  // every fragment would need its own highway below. Inserting p into
  // q's list for each kept edge p->q (only while q has spare capacity,
  // so the refine degree cap still holds) makes the graph near-symmetric,
  // which repairs most of that fragmentation up front and gives the
  // greedy search a way back "up" toward a query's cluster. Serial with
  // a fixed visit order, so builds stay bit-identical across pool sizes.
  {
    std::vector<uint32_t> base_degree(n);
    for (size_t p = 0; p < n; ++p) {
      base_degree[p] = static_cast<uint32_t>(adjacency[p].size());
    }
    for (size_t p = 0; p < n; ++p) {
      for (uint32_t i = 0; i < base_degree[p]; ++i) {
        const int32_t q = adjacency[p][i];
        auto& back = adjacency[q];
        if (back.size() >= config.max_degree) continue;
        if (std::find(back.begin(), back.end(), static_cast<int32_t>(p)) ==
            back.end()) {
          back.push_back(static_cast<int32_t>(p));
          ++local_stats.reverse_edges;
        }
      }
    }
  }

  // --- Connectivity repair: even after the reverse pass, far-apart
  // clusters can be unreachable from the navigating node. Link the
  // navigating node to the nearest point of each unreachable component
  // (these are exactly the "highway" edges of §IV-A, guaranteeing the
  // greedy search can leave the entry cluster — and giving every query
  // a one-hop teleport toward its cluster). The reverse pass above is
  // what keeps this affordable at scale: without it, directed pruning
  // fragments each cluster into many single-node components and the
  // navigating node degenerates into a hub whose expansion costs
  // O(fragments) distance computations on every search; with it, the
  // highway count is the number of genuine clusters.
  {
    // Reachability is judged over *strong* edges only: p -> q counts
    // only while d(p, q) <= 2x p's shortest kept edge (a factor of 4
    // on squared distances). Candidate pools leave a few long one-way
    // edges between far clusters; through those a cluster is
    // technically reachable, but the best-first search never follows
    // them (a weak link's far endpoint never outranks the local
    // frontier), so without a highway every query into that cluster
    // misses. Filtering weak edges out of this pass — the search graph
    // itself is untouched — makes such clusters count as unreached and
    // earn a proper highway. On smoothly-distributed data edge lengths
    // are comparable, nothing is filtered, and this degenerates to
    // plain reachability.
    constexpr float kStrongEdgeFactor = 4.0f;  // squared-distance ratio
    std::vector<std::vector<int32_t>> strong(n);
    std::vector<float> edge_dist;
    for (size_t p = 0; p < n; ++p) {
      const auto& nbrs = adjacency[p];
      if (nbrs.empty()) continue;
      edge_dist.resize(nbrs.size());
      float dmin = std::numeric_limits<float>::max();
      for (size_t i = 0; i < nbrs.size(); ++i) {
        ++local_stats.distance_computations;
        edge_dist[i] = squared(static_cast<int32_t>(p), nbrs[i]);
        dmin = std::min(dmin, edge_dist[i]);
      }
      auto& out = strong[p];
      out.reserve(nbrs.size());
      for (size_t i = 0; i < nbrs.size(); ++i) {
        if (edge_dist[i] <= kStrongEdgeFactor * dmin) out.push_back(nbrs[i]);
      }
    }
    std::vector<char> reachable(n, 0);
    std::vector<int32_t> stack;
    auto bfs_from = [&](int32_t start) {
      stack.push_back(start);
      reachable[start] = 1;
      while (!stack.empty()) {
        const int32_t v = stack.back();
        stack.pop_back();
        for (int32_t u : strong[v]) {
          if (!reachable[u]) {
            reachable[u] = 1;
            stack.push_back(u);
          }
        }
      }
    };
    bfs_from(navigating);
    for (;;) {
      int32_t nearest = -1;
      float nearest_dist = 0.0f;
      for (size_t u = 0; u < n; ++u) {
        if (reachable[u]) continue;
        ++local_stats.distance_computations;
        const float dist = squared(navigating, static_cast<int32_t>(u));
        if (nearest < 0 || dist < nearest_dist) {
          nearest = static_cast<int32_t>(u);
          nearest_dist = dist;
        }
      }
      if (nearest < 0) break;
      adjacency[navigating].push_back(nearest);
      ++local_stats.connectivity_edges;
      bfs_from(nearest);
    }
  }

  index.FinalizeLayout(points, std::move(adjacency), navigating,
                       config.quantize, /*ext_codes=*/nullptr);

  local_stats.edges_final = index.NumEdges();
  local_stats.build_seconds = total_timer.ElapsedSeconds();
  KPEF_COUNTER_ADD(obs::kPgindexBuildsTotal, 1);
  KPEF_COUNTER_ADD(obs::kPgindexBuildDistanceComputations,
                   local_stats.distance_computations);
  if (stats) *stats = local_stats;
  return index;
}

void PGIndex::FinalizeLayout(const Matrix& ext_points,
                             std::vector<std::vector<int32_t>>&& ext_adjacency,
                             int32_t navigating_external, bool quantize,
                             const Sq8Codes* ext_codes) {
  const size_t n = ext_points.rows();
  const size_t d = ext_points.cols();
  navigating_node_ = navigating_external;

  // BFS relabeling from the navigating node: the greedy search expands
  // nodes roughly in BFS order, so storing rows in that order turns graph
  // locality into memory locality. FIFO order with neighbors taken in
  // their stored (refinement) order makes the permutation a pure function
  // of the external graph — Build and a later Load agree bit-for-bit.
  to_external_.clear();
  to_external_.reserve(n);
  std::vector<char> seen(n, 0);
  if (n > 0 && navigating_external >= 0) {
    size_t head = 0;
    to_external_.push_back(navigating_external);
    seen[navigating_external] = 1;
    while (head < to_external_.size()) {
      const int32_t v = to_external_[head++];
      for (int32_t u : ext_adjacency[v]) {
        if (!seen[u]) {
          seen[u] = 1;
          to_external_.push_back(u);
        }
      }
    }
  }
  // Unreachable stragglers (possible only in degenerate graphs) keep
  // their relative order at the end.
  for (size_t v = 0; v < n; ++v) {
    if (!seen[v]) to_external_.push_back(static_cast<int32_t>(v));
  }
  to_internal_.assign(n, -1);
  for (size_t i = 0; i < n; ++i) to_internal_[to_external_[i]] = static_cast<int32_t>(i);

  // Permuted copies: points, then the adjacency flattened to CSR (ids
  // remapped to internal, per-node order preserved).
  points_ = Matrix(n, d);
  for (size_t i = 0; i < n; ++i) {
    const auto src = ext_points.Row(to_external_[i]);
    auto dst = points_.Row(i);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  size_t total_edges = 0;
  for (const auto& nbrs : ext_adjacency) total_edges += nbrs.size();
  adj_offsets_.assign(n + 1, 0);
  adj_.clear();
  adj_.reserve(total_edges);
  for (size_t i = 0; i < n; ++i) {
    for (int32_t u : ext_adjacency[to_external_[i]]) {
      adj_.push_back(to_internal_[u]);
    }
    adj_offsets_[i + 1] = static_cast<int64_t>(adj_.size());
  }
  ext_adjacency.clear();

  codes_ = Sq8Codes();
  if (quantize && n > 0) {
    if (ext_codes != nullptr && !ext_codes->empty()) {
      codes_ = Sq8Codes::Permuted(*ext_codes, to_external_);
    } else {
      // Encoding commutes with row permutation (per-dim min/max are
      // order-independent), so encoding the internal-order matrix equals
      // permuting externally-encoded codes.
      codes_ = Sq8Codes::Encode(points_);
    }
  }
  extra_.clear();
  extra_edges_ = 0;
}

std::span<const int32_t> PGIndex::MergedNeighbors(
    int32_t internal, std::vector<int32_t>& scratch) const {
  const auto base = InternalNeighbors(internal);
  const auto extra = ExtraNeighbors(internal);
  if (extra.empty()) return base;
  scratch.assign(base.begin(), base.end());
  scratch.insert(scratch.end(), extra.begin(), extra.end());
  return {scratch.data(), scratch.size()};
}

std::vector<int32_t> PGIndex::NeighborsOf(int32_t node) const {
  const int32_t internal = to_internal_[node];
  std::vector<int32_t> out;
  out.reserve(InternalNeighbors(internal).size() +
              ExtraNeighbors(internal).size());
  for (int32_t u : InternalNeighbors(internal)) out.push_back(to_external_[u]);
  for (int32_t u : ExtraNeighbors(internal)) out.push_back(to_external_[u]);
  return out;
}

void PGIndex::set_rerank_factor(double factor) {
  rerank_factor_ = std::max(1.0, factor);
}

Status PGIndex::InsertBatch(const Matrix& new_points,
                            const InsertParams& params, InsertStats* stats) {
  if (new_points.rows() == 0) return Status::OK();
  if (points_.rows() == 0) {
    return Status::FailedPrecondition(
        "PGIndex::InsertBatch requires a non-empty base index");
  }
  if (new_points.cols() != points_.cols()) {
    return Status::InvalidArgument(
        "inserted point dimensionality does not match the index");
  }
  const size_t max_degree = std::max<size_t>(1, params.max_degree);
  const DistanceKernel& kernel = ActiveKernel();
  const size_t width = points_.stride();
  auto squared = [&](int32_t a, int32_t b) {
    return kernel.squared_l2(points_.PaddedRow(a).data(),
                             points_.PaddedRow(b).data(), width);
  };
  InsertStats local;
  std::vector<std::pair<float, int32_t>> cands;  // (squared dist, internal)
  std::vector<int32_t> kept;
  for (size_t r = 0; r < new_points.rows(); ++r) {
    // Locate the neighborhood with the regular greedy search (rerank
    // makes the candidate distances exact fp32 on the quantized path).
    SearchParams sp;
    sp.m = max_degree;
    sp.ef = std::max(params.ef, max_degree + 8);
    sp.rerank_factor =
        quantized() ? std::max(rerank_factor_,
                               static_cast<double>(sp.ef) /
                                   static_cast<double>(std::max<size_t>(1, sp.m)))
                    : 0.0;
    SearchStats search_stats;
    const std::vector<Neighbor> found =
        Search(new_points.Row(r), sp, &search_stats);
    cands.clear();
    cands.reserve(found.size());
    for (const Neighbor& nb : found) {
      // Search returns true (rooted) L2 over external ids.
      cands.emplace_back(nb.distance * nb.distance, to_internal_[nb.id]);
    }
    std::sort(cands.begin(), cands.end());
    // Occlusion prune (Algorithm 2 lines 9-12): walking candidates
    // nearest-first, drop y when some kept x satisfies
    // d(x, y) <= d(y, p) — x "covers" the direction of y.
    kept.clear();
    for (const auto& [dist_yp, y] : cands) {
      if (kept.size() >= max_degree) break;
      bool occluded = false;
      for (const int32_t x : kept) {
        if (squared(x, y) <= dist_yp) {
          occluded = true;
          break;
        }
      }
      if (!occluded) kept.push_back(y);
    }
    // Append the point: new external id == new internal id (both are the
    // next row number), so the relabeling maps stay consistent without
    // touching existing entries.
    const int32_t fresh = static_cast<int32_t>(points_.rows());
    points_.AppendRow(new_points.Row(r));
    if (quantized()) codes_.AppendRow(new_points.Row(r));
    to_external_.push_back(fresh);
    to_internal_.push_back(fresh);
    if (extra_.size() < points_.rows()) extra_.resize(points_.rows());
    const int32_t entry = to_internal_[navigating_node_];
    if (kept.empty()) kept.push_back(entry);
    extra_[fresh].assign(kept.begin(), kept.end());
    local.edges_added += kept.size();
    // Reverse edges keep the new node reachable from the base graph;
    // capacity-capped like the build's reverse pass, with at least one
    // in-edge forced so the greedy search can always arrive.
    size_t reverse_added = 0;
    for (const int32_t q : kept) {
      const size_t degree =
          InternalNeighbors(q).size() + extra_[q].size();
      if (degree >= max_degree) continue;
      extra_[q].push_back(fresh);
      ++reverse_added;
    }
    if (reverse_added == 0) {
      extra_[kept.front()].push_back(fresh);
      ++reverse_added;
    }
    local.edges_added += reverse_added;
    ++local.inserted;
  }
  extra_edges_ += local.edges_added;
  if (stats) *stats = local;
  return Status::OK();
}

void PGIndex::CompactDelta() {
  if (extra_edges_ == 0 && extra_.empty()) return;
  const size_t n = points_.rows();
  // Reassemble the external-order view (the layout Save writes), then
  // re-run the exact Build/Load finalization over the merged graph: BFS
  // relabel, CSR flatten, SQ8 re-encode with scales covering the full
  // point set.
  Matrix ext_points(n, points_.cols());
  for (size_t v = 0; v < n; ++v) {
    const auto src = points_.Row(to_internal_[v]);
    auto dst = ext_points.Row(v);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  std::vector<std::vector<int32_t>> ext_adjacency(n);
  std::vector<int32_t> scratch;
  for (size_t v = 0; v < n; ++v) {
    const auto merged = MergedNeighbors(to_internal_[v], scratch);
    auto& out = ext_adjacency[v];
    out.reserve(merged.size());
    for (int32_t u : merged) out.push_back(to_external_[u]);
  }
  FinalizeLayout(ext_points, std::move(ext_adjacency), navigating_node_,
                 quantized(), /*ext_codes=*/nullptr);
}

uint64_t PGIndex::SearchGroup(GroupSlot* slots, size_t count,
                              const SearchParams& params,
                              SearchArena& arena) const {
  const size_t n = points_.rows();
  const size_t m = params.m;
  if (n == 0 || m == 0 || count == 0) return 0;
  const bool use_sq8 = quantized() && !params.force_exact;
  double rf = params.rerank_factor > 0.0 ? params.rerank_factor
                                         : rerank_factor_;
  rf = std::max(1.0, rf);
  const size_t rerank_depth =
      use_sq8 ? std::max(m, static_cast<size_t>(rf * static_cast<double>(m)))
              : m;
  const size_t pool_size = std::max(params.ef, rerank_depth);

  arena.Prepare(count);
  const DistanceKernel& kernel = ActiveKernel();
  const size_t fp32_width = points_.stride();
  const float* steps = use_sq8 ? codes_.steps().data() : nullptr;
  const size_t code_width = use_sq8 ? codes_.stride() : 0;

  auto fp32_distance = [&](size_t s, int32_t u) {
    ++slots[s].stats->distance_computations;
    return kernel.squared_l2(points_.PaddedRow(u).data(),
                             slots[s].query.data(), fp32_width);
  };
  auto traversal_distance = [&](size_t s, int32_t u) {
    if (use_sq8) {
      ++slots[s].stats->sq8_distance_computations;
      return kernel.sq8_asym_l2(arena.qt[s].data(), steps, codes_.RowPtr(u),
                                code_width);
    }
    return fp32_distance(s, u);
  };
  auto prefetch_point = [&](int32_t u) {
    if (use_sq8) {
      PrefetchBytes(codes_.RowPtr(u), code_width);
    } else {
      PrefetchBytes(points_.PaddedRow(u).data(), fp32_width * sizeof(float));
    }
  };
  const auto min_cmp = std::greater<Neighbor>{};

  const int32_t entry = to_internal_[navigating_node_];
  bool live[64];  // count is bounded by the batch group size (<= 8)
  KPEF_CHECK(count <= 64);
  for (size_t s = 0; s < count; ++s) {
    arena.visited[s].Begin(n);
    arena.cand[s].clear();
    arena.pool[s].clear();
    if (use_sq8) codes_.PrepareQuery(slots[s].query, arena.qt[s]);
    const Neighbor first{entry, traversal_distance(s, entry)};
    arena.cand[s].push_back(first);
    arena.pool[s].push_back(first);
    arena.visited[s].TestAndSet(entry);
    live[s] = true;
  }

  // Lockstep rounds: phase 1 pops each live query's best candidate (the
  // per-query pop/terminate logic is exactly the serial greedy loop, so
  // results are independent of group composition); phase 2 expands the
  // popped nodes, grouping queries that landed on the same node so one
  // pass over its adjacency (and one load of each neighbor row) services
  // all of them, with the next rows prefetched while the current one is
  // scored.
  uint64_t interleaved_hops = 0;
  auto& expand = arena.expand;
  for (;;) {
    size_t live_count = 0;
    for (size_t s = 0; s < count; ++s) live_count += live[s] ? 1 : 0;
    if (live_count == 0) break;
    expand.clear();
    for (size_t s = 0; s < count; ++s) {
      if (!live[s]) continue;
      auto& cand = arena.cand[s];
      if (cand.empty()) {
        live[s] = false;
        continue;
      }
      std::pop_heap(cand.begin(), cand.end(), min_cmp);
      const Neighbor current = cand.back();
      cand.pop_back();
      auto& pool = arena.pool[s];
      if (pool.size() >= pool_size &&
          current.distance > pool.front().distance) {
        live[s] = false;  // cannot improve the pool anymore
        continue;
      }
      ++slots[s].stats->hops;
      if (live_count > 1) ++interleaved_hops;
      expand.emplace_back(current.id, static_cast<uint32_t>(s));
    }
    if (expand.empty()) continue;
    // Group coinciding nodes. Insertion sort by node id, stable so
    // per-slot processing order within a node is the slot order
    // (irrelevant to results, nice for reading): expand holds at most
    // one entry per live slot, and std::stable_sort would allocate its
    // merge buffer on every round.
    for (size_t i = 1; i < expand.size(); ++i) {
      const auto e = expand[i];
      size_t j = i;
      for (; j > 0 && expand[j - 1].first > e.first; --j) {
        expand[j] = expand[j - 1];
      }
      expand[j] = e;
    }
    // Split into coincidence groups and prefetch every popped node's
    // adjacency range before any of them is walked — with up to 8 live
    // queries the ranges' cache misses overlap instead of serializing.
    auto& groups = arena.groups;
    groups.clear();
    for (size_t i = 0; i < expand.size();) {
      size_t j = i;
      while (j < expand.size() && expand[j].first == expand[i].first) ++j;
      groups.emplace_back(static_cast<uint32_t>(i), static_cast<uint32_t>(j));
      const auto base_nbrs = InternalNeighbors(expand[i].first);
      if (!base_nbrs.empty()) {
        PrefetchBytes(base_nbrs.data(), base_nbrs.size() * sizeof(int32_t));
      }
      i = j;
    }
    // Warm a group's visited-bitmap words a couple of groups ahead of
    // pass A's walk (the row prefetches are issued by pass A itself).
    auto warm_visited = [&](size_t g) {
      const auto [begin, end] = groups[g];
      const auto nbrs =
          MergedNeighbors(expand[begin].first, arena.merged_warm);
      for (const int32_t u : nbrs) {
        for (uint32_t w = begin; w < end; ++w) {
          arena.visited[expand[w].second].Prefetch(u);
        }
      }
    };
    if (!groups.empty()) warm_visited(0);
    if (groups.size() > 1) warm_visited(1);
    // Phase 2 proper runs as two passes over the round's groups. Pass A
    // walks every group's adjacency once: it marks visited (in exactly
    // the serial order), records a ScoreRun for each neighbor row that
    // any groupmate still needs, and issues that row's prefetch the
    // moment it is known to be needed. Pass B then scores the runs in
    // the same order. The split means every row fetch of the round is
    // in flight before pass B needs it: the misses overlap into
    // bandwidth instead of serializing behind kernel calls, and the
    // overlap window grows with the number of live groups — this is
    // where a real batch beats one-at-a-time on an index bigger than
    // cache. Visited updates all happen in pass A and heap updates all
    // happen in pass B, each in the serial nested order, so results
    // are bit-identical to the fused loop.
    auto& runs = arena.runs;
    auto& run_slots = arena.run_slots;
    runs.clear();
    run_slots.clear();
    for (size_t g = 0; g < groups.size(); ++g) {
      if (g + 2 < groups.size()) warm_visited(g + 2);
      const auto [begin, end] = groups[g];
      const auto nbrs = MergedNeighbors(expand[begin].first, arena.merged);
      for (const int32_t u : nbrs) {
        const uint32_t first = static_cast<uint32_t>(run_slots.size());
        for (uint32_t w = begin; w < end; ++w) {
          const uint32_t slot = expand[w].second;
          if (arena.visited[slot].TestAndSet(u)) continue;
          run_slots.push_back(slot);
        }
        const uint32_t nfresh =
            static_cast<uint32_t>(run_slots.size()) - first;
        if (nfresh == 0) continue;
        prefetch_point(u);
        runs.push_back({u, first, nfresh});
      }
    }
    for (const auto& run : runs) {
      const int32_t u = run.node;
      const uint32_t* fresh = run_slots.data() + run.begin;
      const uint32_t nfresh = run.count;
      float dists[64];  // count <= 64, so a run never exceeds 64 slots
      // When several queries share the node, the x4 kernel dequantizes
      // u's code row once for up to four of them (bit-identical per
      // slot to single-row calls).
      if (use_sq8 && nfresh >= 3) {
          for (uint32_t base = 0; base < nfresh; base += 4) {
            const float* qts[4];
            for (uint32_t k = 0; k < 4; ++k) {
              const uint32_t t = base + k < nfresh ? base + k : nfresh - 1;
              qts[k] = arena.qt[fresh[t]].data();
            }
            float quad[4];
            kernel.sq8_asym_l2x4(qts, steps, codes_.RowPtr(u), code_width,
                                 quad);
            for (uint32_t k = 0; k < 4 && base + k < nfresh; ++k) {
              dists[base + k] = quad[k];
              ++slots[fresh[base + k]].stats->sq8_distance_computations;
            }
          }
      } else {
        for (uint32_t t = 0; t < nfresh; ++t) {
          dists[t] = traversal_distance(fresh[t], u);
        }
      }
      for (uint32_t t = 0; t < nfresh; ++t) {
        const size_t s = fresh[t];
        const float dist = dists[t];
        auto& pool = arena.pool[s];
        if (pool.size() < pool_size || dist < pool.front().distance) {
          const Neighbor next{u, dist};
          auto& cand = arena.cand[s];
          cand.push_back(next);
          std::push_heap(cand.begin(), cand.end(), min_cmp);
          if (pool.size() < pool_size) {
            pool.push_back(next);
            std::push_heap(pool.begin(), pool.end());
          } else {
            ReplaceHeapTop(pool, next);
          }
        }
      }
    }
  }

  // Finalization per slot: order the surviving pool, exact-rerank the
  // SQ8 frontrunners in fp32, cut to m, and translate internal ids back
  // to external. Distances returned are true (rooted) L2.
  for (size_t s = 0; s < count; ++s) {
    auto& pool = arena.pool[s];
    slots[s].pool_occupancy = pool.size();
    std::sort_heap(pool.begin(), pool.end());  // ascending (dist, id)
    std::vector<Neighbor>& out = *slots[s].out;
    out.clear();
    if (use_sq8) {
      const size_t rcount = std::min(pool.size(), rerank_depth);
      slots[s].stats->rerank_candidates += rcount;
      auto& rr = arena.rerank;
      rr.clear();
      rr.reserve(rcount);
      for (size_t r = 0; r < rcount; ++r) {
        PrefetchBytes(points_.PaddedRow(pool[r].id).data(),
                      fp32_width * sizeof(float));
      }
      for (size_t r = 0; r < rcount; ++r) {
        const int32_t u = pool[r].id;
        rr.push_back({u, fp32_distance(s, u)});
      }
      std::sort(rr.begin(), rr.end());
      if (rr.size() > m) rr.resize(m);
      out.reserve(rr.size());
      for (const Neighbor& nb : rr) {
        out.push_back({to_external_[nb.id], std::sqrt(nb.distance)});
      }
    } else {
      const size_t rcount = std::min(pool.size(), m);
      out.reserve(rcount);
      for (size_t r = 0; r < rcount; ++r) {
        out.push_back({to_external_[pool[r].id], std::sqrt(pool[r].distance)});
      }
    }
  }
  return interleaved_hops;
}

std::vector<Neighbor> PGIndex::Search(std::span<const float> query, size_t m,
                                      size_t ef, SearchStats* stats) const {
  return Search(query, SearchParams{.m = m, .ef = ef}, stats);
}

std::vector<Neighbor> PGIndex::Search(std::span<const float> query,
                                      const SearchParams& params,
                                      SearchStats* stats) const {
  KPEF_TRACE_SPAN("pgindex.search");
  const AlignedVector padded = PadToAligned(query);
  SearchStats local_stats;
  std::vector<Neighbor> result;
  Timer search_timer;
  GroupSlot slot{{padded.data(), padded.size()}, &local_stats, &result};
  SearchGroup(&slot, 1, params, LocalArena());
  local_stats.search_ms = search_timer.ElapsedMillis();
  // The greedy loop above accumulated into stack-local stats only;
  // concurrent searches over a shared (const) index merge here, once.
  KPEF_COUNTER_ADD(obs::kPgindexSearchesTotal, 1);
  KPEF_COUNTER_ADD(obs::kPgindexDistanceComputations,
                   local_stats.distance_computations);
  KPEF_COUNTER_ADD(obs::kPgindexSq8DistanceComputations,
                   local_stats.sq8_distance_computations);
  KPEF_COUNTER_ADD(obs::kPgindexRerankCandidates,
                   local_stats.rerank_candidates);
  KPEF_HISTOGRAM_OBSERVE(obs::kPgindexSearchHops, local_stats.hops);
  KPEF_HISTOGRAM_OBSERVE(obs::kPgindexCandidatePoolOccupancy,
                         slot.pool_occupancy);
  if (stats) *stats = local_stats;
  return result;
}

std::vector<std::vector<Neighbor>> PGIndex::SearchBatch(
    const Matrix& queries, size_t m, size_t ef,
    std::vector<SearchStats>* stats, ThreadPool* pool,
    const CancelToken& cancel) const {
  return SearchBatch(queries, SearchParams{.m = m, .ef = ef}, stats, pool,
                     cancel);
}

std::vector<std::vector<Neighbor>> PGIndex::SearchBatch(
    const Matrix& queries, const SearchParams& params,
    std::vector<SearchStats>* stats, ThreadPool* pool,
    const CancelToken& cancel) const {
  KPEF_TRACE_SPAN("pgindex.search_batch");
  const size_t batch = queries.rows();
  std::vector<std::vector<Neighbor>> results(batch);
  std::vector<SearchStats> local_stats(batch);
  if (batch == 0) {
    if (stats) stats->clear();
    return results;
  }
  KPEF_CHECK(points_.rows() == 0 || queries.cols() == points_.cols())
      << "query dimensionality does not match the index";
  std::vector<size_t> occupancy(batch, 0);
  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::Default();
  const bool cancellable = cancel.CanBeCancelled();
  // Queries run in lockstep groups of kGroup: one task per group, groups
  // fanned over the pool. Within a group the per-query greedy logic is
  // byte-identical to the serial path (see SearchGroup), so results do
  // not depend on the pool size or how the batch splits into groups.
  // Cancellation is checked once per query as its group forms: a query
  // either runs to completion or is skipped whole.
  constexpr size_t kGroup = 64;
  // Destination-aware grouping: a lockstep group only amortizes work
  // (shared adjacency walks, the x4 shared-row kernel, one prefetch per
  // node instead of one per query) for queries that actually traverse
  // the same rows. Each query's nearest highway — the navigating node's
  // adjacency holds one per cluster by construction — is a cheap proxy
  // for the region its greedy descent will enter, so the batch is
  // ordered by that key before being cut into groups. Per-query results
  // are independent of group composition (see SearchGroup), so this
  // reorders work, never answers.
  std::vector<uint32_t> order(batch);
  for (size_t q = 0; q < batch; ++q) order[q] = static_cast<uint32_t>(q);
  std::vector<int32_t> highway_scratch;
  if (batch > kGroup && points_.rows() > 0) {
    const auto highways =
        MergedNeighbors(to_internal_[navigating_node_], highway_scratch);
    if (highways.size() > 1) {
      // The key scan is per-batch plumbing, deliberately left out of
      // per-query SearchStats: those stay byte-identical to the serial
      // path (tested), and wall-clock throughput pays for the scan
      // either way.
      const DistanceKernel& kernel = ActiveKernel();
      const size_t width = points_.stride();
      std::vector<int32_t> region(batch);
      for (size_t q = 0; q < batch; ++q) {
        const float* query = queries.PaddedRow(q).data();
        int32_t best = highways[0];
        float best_dist = std::numeric_limits<float>::infinity();
        for (const int32_t h : highways) {
          const float d =
              kernel.squared_l2(points_.PaddedRow(h).data(), query, width);
          if (d < best_dist) {
            best_dist = d;
            best = h;
          }
        }
        region[q] = best;
      }
      std::stable_sort(order.begin(), order.end(),
                       [&](uint32_t a, uint32_t b) {
                         return region[a] < region[b];
                       });
    }
  }
  const size_t num_groups = (batch + kGroup - 1) / kGroup;
  std::vector<uint64_t> group_interleaved(num_groups, 0);
  ParallelFor(p, num_groups, [&](size_t g) {
    const size_t begin = g * kGroup;
    const size_t end = std::min(batch, begin + kGroup);
    GroupSlot slots[kGroup];
    size_t slot_q[kGroup];
    size_t count = 0;
    for (size_t qi = begin; qi < end; ++qi) {
      const size_t q = order[qi];
      if (cancellable && cancel.IsCancelled()) {
        local_stats[q].cancelled = true;
        continue;
      }
      slots[count] = GroupSlot{queries.PaddedRow(q), &local_stats[q],
                               &results[q]};
      slot_q[count] = q;
      ++count;
    }
    if (count == 0) return;
    Timer group_timer;
    group_interleaved[g] = SearchGroup(slots, count, params, LocalArena());
    const double elapsed_ms = group_timer.ElapsedMillis();
    // The group overlaps its queries in time; attribute its wall-clock
    // to them proportionally to their distance-evaluation counts.
    double total_work = 0.0;
    for (size_t i = 0; i < count; ++i) {
      total_work +=
          static_cast<double>(slots[i].stats->distance_computations +
                              slots[i].stats->sq8_distance_computations);
    }
    for (size_t i = 0; i < count; ++i) {
      const double work =
          static_cast<double>(slots[i].stats->distance_computations +
                              slots[i].stats->sq8_distance_computations);
      slots[i].stats->search_ms = total_work > 0.0
                                      ? elapsed_ms * (work / total_work)
                                      : elapsed_ms / static_cast<double>(count);
      occupancy[slot_q[i]] = slots[i].pool_occupancy;
    }
  });
  // Merge per-query stats through the registry once for the whole batch.
  uint64_t total_fp32 = 0, total_sq8 = 0, total_rerank = 0;
  uint64_t total_interleaved = 0;
  for (const SearchStats& s : local_stats) {
    total_fp32 += s.distance_computations;
    total_sq8 += s.sq8_distance_computations;
    total_rerank += s.rerank_candidates;
  }
  for (uint64_t h : group_interleaved) total_interleaved += h;
  KPEF_COUNTER_ADD(obs::kPgindexSearchesTotal, batch);
  KPEF_COUNTER_ADD(obs::kPgindexBatchSearchesTotal, 1);
  KPEF_COUNTER_ADD(obs::kPgindexDistanceComputations, total_fp32);
  KPEF_COUNTER_ADD(obs::kPgindexSq8DistanceComputations, total_sq8);
  KPEF_COUNTER_ADD(obs::kPgindexRerankCandidates, total_rerank);
  KPEF_COUNTER_ADD(obs::kPgindexBatchInterleavedHops, total_interleaved);
  for (size_t q = 0; q < batch; ++q) {
    KPEF_HISTOGRAM_OBSERVE(obs::kPgindexSearchHops, local_stats[q].hops);
    KPEF_HISTOGRAM_OBSERVE(obs::kPgindexCandidatePoolOccupancy, occupancy[q]);
  }
  if (stats) *stats = std::move(local_stats);
  return results;
}

size_t PGIndex::MemoryUsageBytes() const {
  size_t extra_bytes = 0;
  for (const auto& list : extra_) {
    extra_bytes += list.capacity() * sizeof(int32_t);
  }
  return points_.PaddedSize() * sizeof(float) +
         adj_.size() * sizeof(int32_t) +
         adj_offsets_.size() * sizeof(int64_t) +
         (to_external_.size() + to_internal_.size()) * sizeof(int32_t) +
         extra_bytes + codes_.MemoryUsageBytes();
}

namespace {

constexpr uint32_t kPGIndexMagic = 0x4B504749;  // "KPGI"
// v1: fp32 points + adjacency. v2 appends a has-codes flag and, when
// set, the SQ8 mins/steps and dense code rows. The v1 prefix layout is
// byte-identical, so the header checks (and their tests) carry over.
constexpr uint32_t kPGIndexVersionFp32 = 1;
constexpr uint32_t kPGIndexVersion = 2;

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& in, T& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  return static_cast<bool>(in);
}

}  // namespace

Status PGIndex::Save(std::ostream& out) const {
  const size_t n = points_.rows();
  WritePod(out, kPGIndexMagic);
  WritePod(out, kPGIndexVersion);
  WritePod(out, static_cast<uint64_t>(n));
  WritePod(out, static_cast<uint64_t>(points_.cols()));
  WritePod(out, navigating_node_);
  // Everything below is written in external-id order (dense, no padding),
  // so the artifact is independent of the in-memory relabeling.
  for (size_t r = 0; r < n; ++r) {
    const auto row = points_.Row(to_internal_[r]);
    out.write(reinterpret_cast<const char*>(row.data()),
              static_cast<std::streamsize>(row.size() * sizeof(float)));
  }
  std::vector<int32_t> nbrs;
  std::vector<int32_t> merged_scratch;
  for (size_t v = 0; v < n; ++v) {
    const auto internal =
        MergedNeighbors(to_internal_[v], merged_scratch);
    nbrs.clear();
    nbrs.reserve(internal.size());
    for (int32_t u : internal) nbrs.push_back(to_external_[u]);
    WritePod(out, static_cast<uint32_t>(nbrs.size()));
    out.write(reinterpret_cast<const char*>(nbrs.data()),
              static_cast<std::streamsize>(nbrs.size() * sizeof(int32_t)));
  }
  const uint8_t has_codes = quantized() ? 1 : 0;
  WritePod(out, has_codes);
  if (has_codes) {
    const size_t d = points_.cols();
    out.write(reinterpret_cast<const char*>(codes_.mins().data()),
              static_cast<std::streamsize>(d * sizeof(float)));
    out.write(reinterpret_cast<const char*>(codes_.steps().data()),
              static_cast<std::streamsize>(d * sizeof(float)));
    for (size_t r = 0; r < n; ++r) {
      const auto row = codes_.Row(to_internal_[r]);
      out.write(reinterpret_cast<const char*>(row.data()),
                static_cast<std::streamsize>(d));
    }
  }
  if (!out) return Status::IOError("write failed");
  return Status::OK();
}

Status PGIndex::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  KPEF_RETURN_IF_ERROR(Save(out));
  out.close();
  if (!out) return Status::IOError("flush failed for " + path);
  return Status::OK();
}

StatusOr<PGIndex> PGIndex::Load(std::istream& in) {
  uint32_t magic = 0, version = 0;
  uint64_t rows = 0, cols = 0;
  int32_t navigating = -1;
  if (!ReadPod(in, magic) || magic != kPGIndexMagic) {
    return Status::InvalidArgument("not a kpef PG-Index file");
  }
  if (!ReadPod(in, version) ||
      (version != kPGIndexVersionFp32 && version != kPGIndexVersion)) {
    return Status::InvalidArgument("unsupported PG-Index version");
  }
  if (!ReadPod(in, rows) || !ReadPod(in, cols) || !ReadPod(in, navigating)) {
    return Status::InvalidArgument("corrupt PG-Index header");
  }
  // Bound rows and cols individually before touching the product so the
  // multiplication cannot wrap (mirrors model_io's PlausibleMatrixDims).
  if (rows > (1ull << 32) || cols > (1ull << 20) ||
      rows * cols > (1ull << 31)) {
    return Status::InvalidArgument("implausible PG-Index dimensions");
  }
  if (rows > 0 &&
      (navigating < 0 || static_cast<uint64_t>(navigating) >= rows)) {
    return Status::InvalidArgument("navigating node out of range");
  }
  Matrix ext_points(rows, cols);
  for (uint64_t r = 0; r < rows; ++r) {
    auto row = ext_points.Row(r);
    in.read(reinterpret_cast<char*>(row.data()),
            static_cast<std::streamsize>(row.size() * sizeof(float)));
  }
  if (!in) return Status::InvalidArgument("truncated PG-Index embeddings");
  std::vector<std::vector<int32_t>> ext_adjacency(rows);
  for (uint64_t v = 0; v < rows; ++v) {
    uint32_t degree = 0;
    if (!ReadPod(in, degree) || degree > rows) {
      return Status::InvalidArgument("corrupt adjacency header");
    }
    auto& nbrs = ext_adjacency[v];
    nbrs.resize(degree);
    in.read(reinterpret_cast<char*>(nbrs.data()),
            static_cast<std::streamsize>(degree * sizeof(int32_t)));
    if (!in) return Status::InvalidArgument("truncated adjacency");
    for (int32_t u : nbrs) {
      if (u < 0 || static_cast<uint64_t>(u) >= rows) {
        return Status::InvalidArgument("neighbor id out of range");
      }
    }
  }
  // v2 carries the codes; a v1 artifact is re-encoded below (encoding is
  // deterministic, so this reproduces exactly what a v2 save would hold).
  bool quantize = true;
  Sq8Codes ext_codes;
  bool have_codes = false;
  if (version >= kPGIndexVersion) {
    uint8_t has_codes = 0;
    if (!ReadPod(in, has_codes) || has_codes > 1) {
      return Status::InvalidArgument("corrupt PG-Index code flag");
    }
    if (has_codes == 0) {
      quantize = false;  // explicitly-unquantized artifact
    } else {
      std::vector<float> mins(cols), steps(cols);
      in.read(reinterpret_cast<char*>(mins.data()),
              static_cast<std::streamsize>(cols * sizeof(float)));
      in.read(reinterpret_cast<char*>(steps.data()),
              static_cast<std::streamsize>(cols * sizeof(float)));
      if (!in) return Status::InvalidArgument("truncated SQ8 scales");
      for (size_t k = 0; k < cols; ++k) {
        if (!std::isfinite(mins[k]) || !std::isfinite(steps[k]) ||
            steps[k] < 0.0f) {
          return Status::InvalidArgument("corrupt SQ8 scales");
        }
      }
      std::vector<uint8_t> dense(rows * cols);
      in.read(reinterpret_cast<char*>(dense.data()),
              static_cast<std::streamsize>(dense.size()));
      if (!in) return Status::InvalidArgument("truncated SQ8 codes");
      ext_codes = Sq8Codes::FromParts(rows, cols, mins, steps, dense);
      have_codes = true;
    }
  }
  PGIndex index;
  index.FinalizeLayout(ext_points, std::move(ext_adjacency), navigating,
                       quantize, have_codes ? &ext_codes : nullptr);
  return index;
}

StatusOr<PGIndex> PGIndex::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  return Load(in);
}

}  // namespace kpef

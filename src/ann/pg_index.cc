#include "ann/pg_index.h"

#include <algorithm>
#include <atomic>
#include <fstream>
#include <queue>
#include <unordered_set>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "embed/vector_ops.h"
#include "obs/metrics.h"
#include "obs/pipeline_metrics.h"
#include "obs/trace.h"

namespace kpef {

PGIndex PGIndex::Build(const Matrix& points, const PGIndexConfig& config,
                       PGIndexBuildStats* stats) {
  KPEF_TRACE_SPAN("pgindex.build");
  Timer total_timer;
  PGIndex index;
  index.points_ = points;
  const size_t n = points.rows();
  const size_t d = points.cols();
  index.adjacency_.resize(n);
  PGIndexBuildStats local_stats;
  if (n == 0) {
    if (stats) *stats = local_stats;
    return index;
  }

  // --- Navigating node selection (lines 1-2): nearest to the centroid.
  std::vector<float> centroid(d, 0.0f);
  for (size_t i = 0; i < n; ++i) {
    auto row = points.Row(i);
    for (size_t k = 0; k < d; ++k) centroid[k] += row[k];
  }
  for (float& c : centroid) c /= static_cast<float>(n);
  float best = 0.0f;
  for (size_t i = 0; i < n; ++i) {
    const float dist = L2Distance(points.Row(i), centroid);
    ++local_stats.distance_computations;
    if (index.navigating_node_ < 0 || dist < best) {
      index.navigating_node_ = static_cast<int32_t>(i);
      best = dist;
    }
  }

  // --- Initialize kNN graph (lines 3-6).
  Timer knn_timer;
  KnnGraph knn = config.exact_knn
                     ? BuildExactKnnGraph(points, config.knn_k)
                     : BuildKnnGraph(points, [&] {
                         NNDescentConfig c = config.nndescent;
                         c.k = config.knn_k;
                         return c;
                       }());
  local_stats.knn_seconds = knn_timer.ElapsedSeconds();
  local_stats.distance_computations += knn.distance_computations;
  KPEF_COUNTER_ADD(obs::kPgindexNndescentIterations, knn.iterations_run);
  for (const auto& nbrs : knn.neighbors) {
    local_stats.edges_after_knn += nbrs.size();
  }

  // --- Refine neighbors (per-node independent; parallel over chunks).
  Timer refine_timer;
  std::atomic<uint64_t> refine_distances{0};
  auto refine_node = [&](size_t p, uint64_t& dist_count) {
    auto distance = [&](int32_t a, int32_t b) {
      ++dist_count;
      return L2Distance(points.Row(a), points.Row(b));
    };
    // Long-distance neighbors extension (lines 7-8): N(p) plus N(x) for
    // every x in N(p).
    std::vector<Neighbor> candidates = knn.neighbors[p];
    size_t extension_edges = 0;
    if (config.extend_neighbors) {
      std::unordered_set<int32_t> seen;
      seen.insert(static_cast<int32_t>(p));
      for (const Neighbor& nb : knn.neighbors[p]) seen.insert(nb.id);
      for (const Neighbor& x : knn.neighbors[p]) {
        for (const Neighbor& y : knn.neighbors[x.id]) {
          if (seen.insert(y.id).second) {
            candidates.push_back(
                {y.id, distance(static_cast<int32_t>(p), y.id)});
          }
        }
      }
    }
    std::sort(candidates.begin(), candidates.end());
    extension_edges = candidates.size();

    // Redundant neighbors removal (lines 9-12): scanning nearest-first,
    // drop y when some kept x satisfies δ(x, y) <= δ(y, p).
    auto& out = index.adjacency_[p];
    out.clear();
    if (config.remove_redundant) {
      std::vector<Neighbor> kept;
      for (const Neighbor& y : candidates) {
        if (kept.size() >= config.max_degree) break;
        bool redundant = false;
        for (const Neighbor& x : kept) {
          if (distance(x.id, y.id) <= y.distance) {
            redundant = true;
            break;
          }
        }
        if (!redundant) kept.push_back(y);
      }
      out.reserve(kept.size());
      for (const Neighbor& nb : kept) out.push_back(nb.id);
    } else {
      const size_t limit = std::min(candidates.size(), config.max_degree);
      out.reserve(limit);
      for (size_t i = 0; i < limit; ++i) out.push_back(candidates[i].id);
    }
    return extension_edges;
  };
  {
    ThreadPool& pool = ThreadPool::Default();
    const size_t workers = std::max<size_t>(1, pool.num_threads());
    std::atomic<uint64_t> extension_total{0};
    auto refine_range = [&](size_t begin, size_t end) {
      uint64_t dists = 0;
      uint64_t ext = 0;
      for (size_t p = begin; p < end; ++p) ext += refine_node(p, dists);
      refine_distances.fetch_add(dists, std::memory_order_relaxed);
      extension_total.fetch_add(ext, std::memory_order_relaxed);
    };
    if (workers <= 1 || n < 2 * workers) {
      refine_range(0, n);
    } else {
      const size_t chunk = (n + workers - 1) / workers;
      for (size_t start = 0; start < n; start += chunk) {
        const size_t end = std::min(n, start + chunk);
        pool.Submit([&, start, end] { refine_range(start, end); });
      }
      pool.Wait();
    }
    local_stats.edges_after_extension = extension_total.load();
    local_stats.distance_computations += refine_distances.load();
  }
  local_stats.refine_seconds = refine_timer.ElapsedSeconds();

  // --- Connectivity repair: the kNN graph of clustered data can be
  // disconnected, which would make whole clusters unreachable from the
  // navigating node. Link the navigating node to the nearest point of
  // each unreachable component (these are exactly the "highway" edges of
  // §IV-A, guaranteeing the greedy search can leave the entry cluster).
  {
    std::vector<char> reachable(n, 0);
    std::vector<int32_t> stack;
    auto bfs_from = [&](int32_t start) {
      stack.push_back(start);
      reachable[start] = 1;
      while (!stack.empty()) {
        const int32_t v = stack.back();
        stack.pop_back();
        for (int32_t u : index.adjacency_[v]) {
          if (!reachable[u]) {
            reachable[u] = 1;
            stack.push_back(u);
          }
        }
      }
    };
    bfs_from(index.navigating_node_);
    for (;;) {
      int32_t nearest = -1;
      float nearest_dist = 0.0f;
      for (size_t u = 0; u < n; ++u) {
        if (reachable[u]) continue;
        ++local_stats.distance_computations;
        const float dist = L2Distance(points.Row(index.navigating_node_),
                                      points.Row(u));
        if (nearest < 0 || dist < nearest_dist) {
          nearest = static_cast<int32_t>(u);
          nearest_dist = dist;
        }
      }
      if (nearest < 0) break;
      index.adjacency_[index.navigating_node_].push_back(nearest);
      ++local_stats.connectivity_edges;
      bfs_from(nearest);
    }
  }

  local_stats.edges_final = index.NumEdges();
  local_stats.build_seconds = total_timer.ElapsedSeconds();
  KPEF_COUNTER_ADD(obs::kPgindexBuildsTotal, 1);
  KPEF_COUNTER_ADD(obs::kPgindexBuildDistanceComputations,
                   local_stats.distance_computations);
  if (stats) *stats = local_stats;
  return index;
}

std::vector<Neighbor> PGIndex::Search(std::span<const float> query, size_t m,
                                      size_t ef, SearchStats* stats) const {
  KPEF_TRACE_SPAN("pgindex.search");
  const size_t n = points_.rows();
  std::vector<Neighbor> result;
  if (n == 0 || m == 0) return result;
  const size_t pool_size = std::max(ef, m);
  SearchStats local_stats;
  auto distance = [&](int32_t id) {
    ++local_stats.distance_computations;
    return L2Distance(points_.Row(id), query);
  };

  // Best-first search from the navigating node with a bounded result pool
  // (§IV-B): candidates ascending, pool as max-heap of size pool_size.
  std::priority_queue<Neighbor, std::vector<Neighbor>,
                      std::greater<Neighbor>>
      candidates;
  std::priority_queue<Neighbor> pool;  // max-heap: worst on top
  std::vector<char> visited(n, 0);

  const Neighbor entry{navigating_node_, distance(navigating_node_)};
  candidates.push(entry);
  pool.push(entry);
  visited[navigating_node_] = 1;

  while (!candidates.empty()) {
    const Neighbor current = candidates.top();
    candidates.pop();
    if (pool.size() >= pool_size && current.distance > pool.top().distance) {
      break;  // Cannot improve the pool anymore.
    }
    ++local_stats.hops;
    for (int32_t u : adjacency_[current.id]) {
      if (visited[u]) continue;
      visited[u] = 1;
      const Neighbor next{u, distance(u)};
      if (pool.size() < pool_size || next.distance < pool.top().distance) {
        candidates.push(next);
        pool.push(next);
        if (pool.size() > pool_size) pool.pop();
      }
    }
  }
  // The greedy loop above accumulated into stack-local stats only;
  // concurrent searches over a shared (const) index merge here, once.
  const size_t pool_occupancy = pool.size();
  result.reserve(pool.size());
  while (!pool.empty()) {
    result.push_back(pool.top());
    pool.pop();
  }
  std::reverse(result.begin(), result.end());
  if (result.size() > m) result.resize(m);
  KPEF_COUNTER_ADD(obs::kPgindexSearchesTotal, 1);
  KPEF_COUNTER_ADD(obs::kPgindexDistanceComputations,
                   local_stats.distance_computations);
  KPEF_HISTOGRAM_OBSERVE(obs::kPgindexSearchHops, local_stats.hops);
  KPEF_HISTOGRAM_OBSERVE(obs::kPgindexCandidatePoolOccupancy, pool_occupancy);
  if (stats) *stats = local_stats;
  return result;
}

size_t PGIndex::NumEdges() const {
  size_t total = 0;
  for (const auto& nbrs : adjacency_) total += nbrs.size();
  return total;
}

size_t PGIndex::MemoryUsageBytes() const {
  size_t bytes = points_.data().size() * sizeof(float);
  for (const auto& nbrs : adjacency_) {
    bytes += nbrs.size() * sizeof(int32_t) + sizeof(std::vector<int32_t>);
  }
  return bytes;
}

namespace {

constexpr uint32_t kPGIndexMagic = 0x4B504749;  // "KPGI"
constexpr uint32_t kPGIndexVersion = 1;

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& in, T& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  return static_cast<bool>(in);
}

}  // namespace

Status PGIndex::Save(std::ostream& out) const {
  WritePod(out, kPGIndexMagic);
  WritePod(out, kPGIndexVersion);
  WritePod(out, static_cast<uint64_t>(points_.rows()));
  WritePod(out, static_cast<uint64_t>(points_.cols()));
  WritePod(out, navigating_node_);
  out.write(reinterpret_cast<const char*>(points_.data().data()),
            static_cast<std::streamsize>(points_.data().size() *
                                         sizeof(float)));
  for (const auto& nbrs : adjacency_) {
    WritePod(out, static_cast<uint32_t>(nbrs.size()));
    out.write(reinterpret_cast<const char*>(nbrs.data()),
              static_cast<std::streamsize>(nbrs.size() * sizeof(int32_t)));
  }
  if (!out) return Status::IOError("write failed");
  return Status::OK();
}

Status PGIndex::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  KPEF_RETURN_IF_ERROR(Save(out));
  out.close();
  if (!out) return Status::IOError("flush failed for " + path);
  return Status::OK();
}

StatusOr<PGIndex> PGIndex::Load(std::istream& in) {
  uint32_t magic = 0, version = 0;
  uint64_t rows = 0, cols = 0;
  int32_t navigating = -1;
  if (!ReadPod(in, magic) || magic != kPGIndexMagic) {
    return Status::InvalidArgument("not a kpef PG-Index file");
  }
  if (!ReadPod(in, version) || version != kPGIndexVersion) {
    return Status::InvalidArgument("unsupported PG-Index version");
  }
  if (!ReadPod(in, rows) || !ReadPod(in, cols) || !ReadPod(in, navigating)) {
    return Status::InvalidArgument("corrupt PG-Index header");
  }
  if (rows > (1ull << 32) || cols > (1ull << 20) ||
      rows * cols > (1ull << 31)) {
    return Status::InvalidArgument("implausible PG-Index dimensions");
  }
  if (rows > 0 &&
      (navigating < 0 || static_cast<uint64_t>(navigating) >= rows)) {
    return Status::InvalidArgument("navigating node out of range");
  }
  PGIndex index;
  index.navigating_node_ = navigating;
  index.points_ = Matrix(rows, cols);
  in.read(reinterpret_cast<char*>(index.points_.data().data()),
          static_cast<std::streamsize>(rows * cols * sizeof(float)));
  if (!in) return Status::InvalidArgument("truncated PG-Index embeddings");
  index.adjacency_.resize(rows);
  for (uint64_t v = 0; v < rows; ++v) {
    uint32_t degree = 0;
    if (!ReadPod(in, degree) || degree > rows) {
      return Status::InvalidArgument("corrupt adjacency header");
    }
    auto& nbrs = index.adjacency_[v];
    nbrs.resize(degree);
    in.read(reinterpret_cast<char*>(nbrs.data()),
            static_cast<std::streamsize>(degree * sizeof(int32_t)));
    if (!in) return Status::InvalidArgument("truncated adjacency");
    for (int32_t u : nbrs) {
      if (u < 0 || static_cast<uint64_t>(u) >= rows) {
        return Status::InvalidArgument("neighbor id out of range");
      }
    }
  }
  return index;
}

StatusOr<PGIndex> PGIndex::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  return Load(in);
}

}  // namespace kpef

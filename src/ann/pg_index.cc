#include "ann/pg_index.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <queue>
#include <unordered_set>

#include "common/aligned_buffer.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "embed/vector_ops.h"
#include "obs/metrics.h"
#include "obs/pipeline_metrics.h"
#include "obs/trace.h"

namespace kpef {

PGIndex PGIndex::Build(const Matrix& points, const PGIndexConfig& config,
                       PGIndexBuildStats* stats) {
  KPEF_TRACE_SPAN("pgindex.build");
  Timer total_timer;
  PGIndex index;
  index.points_ = points;
  const size_t n = points.rows();
  const size_t d = points.cols();
  index.adjacency_.resize(n);
  PGIndexBuildStats local_stats;
  if (n == 0) {
    if (stats) *stats = local_stats;
    return index;
  }
  ThreadPool& pool = config.nndescent.pool != nullptr
                         ? *config.nndescent.pool
                         : ThreadPool::Default();
  // All hot-loop distances below are squared L2 over padded rows: the
  // square root is monotone, so every comparison (argmin, sort, occlusion
  // check) is unchanged, and padded rows let the kernel run tail-free.
  auto squared = [&](int32_t a, int32_t b) {
    return SquaredL2Distance(points.PaddedRow(a), points.PaddedRow(b));
  };

  // --- Navigating node selection (lines 1-2): nearest to the centroid.
  // The centroid sum stays serial (row order matters for float rounding);
  // the argmin fans out over fixed-size chunks whose per-chunk winners
  // merge serially, so the choice is independent of the pool size.
  AlignedVector centroid(points.stride(), 0.0f);
  for (size_t i = 0; i < n; ++i) {
    auto row = points.Row(i);
    for (size_t k = 0; k < d; ++k) centroid[k] += row[k];
  }
  for (size_t k = 0; k < d; ++k) centroid[k] /= static_cast<float>(n);
  {
    const std::span<const float> centroid_span(centroid.data(),
                                               centroid.size());
    constexpr size_t kArgminChunk = 2048;
    const size_t num_chunks = (n + kArgminChunk - 1) / kArgminChunk;
    std::vector<Neighbor> chunk_best(num_chunks, Neighbor{-1, 0.0f});
    ParallelFor(pool, num_chunks, [&](size_t c) {
      const size_t begin = c * kArgminChunk;
      const size_t end = std::min(n, begin + kArgminChunk);
      Neighbor best{-1, 0.0f};
      for (size_t i = begin; i < end; ++i) {
        const Neighbor cand{static_cast<int32_t>(i),
                            SquaredL2Distance(points.PaddedRow(i),
                                              centroid_span)};
        if (best.id < 0 || cand < best) best = cand;
      }
      chunk_best[c] = best;
    });
    Neighbor best{-1, 0.0f};
    for (const Neighbor& cand : chunk_best) {
      if (cand.id >= 0 && (best.id < 0 || cand < best)) best = cand;
    }
    index.navigating_node_ = best.id;
    local_stats.distance_computations += n;
  }

  // --- Initialize kNN graph (lines 3-6); NNDescent shares the pool.
  Timer knn_timer;
  KnnGraph knn = config.exact_knn
                     ? BuildExactKnnGraph(points, config.knn_k)
                     : BuildKnnGraph(points, [&] {
                         NNDescentConfig c = config.nndescent;
                         c.k = config.knn_k;
                         c.pool = &pool;
                         return c;
                       }());
  local_stats.knn_seconds = knn_timer.ElapsedSeconds();
  local_stats.distance_computations += knn.distance_computations;
  KPEF_COUNTER_ADD(obs::kPgindexNndescentIterations, knn.iterations_run);
  for (const auto& nbrs : knn.neighbors) {
    local_stats.edges_after_knn += nbrs.size();
  }

  // --- Refine neighbors: long-distance extension + occlusion pruning,
  // parallel over nodes (each node reads the shared kNN graph and writes
  // only its own adjacency list and tally slots).
  Timer refine_timer;
  std::vector<uint64_t> refine_dists(n, 0);
  std::vector<uint32_t> extension_edges(n, 0);
  ParallelFor(pool, n, [&](size_t p) {
    uint64_t dist_count = 0;
    auto distance = [&](int32_t a, int32_t b) {
      ++dist_count;
      return squared(a, b);
    };
    // Long-distance neighbors extension (lines 7-8): N(p) plus N(x) for
    // every x in N(p). Seed distances come from the kNN graph (true L2),
    // so square them to stay comparable.
    std::vector<Neighbor> candidates;
    candidates.reserve(knn.neighbors[p].size());
    for (const Neighbor& nb : knn.neighbors[p]) {
      candidates.push_back({nb.id, nb.distance * nb.distance});
    }
    if (config.extend_neighbors) {
      std::unordered_set<int32_t> seen;
      seen.insert(static_cast<int32_t>(p));
      for (const Neighbor& nb : knn.neighbors[p]) seen.insert(nb.id);
      for (const Neighbor& x : knn.neighbors[p]) {
        for (const Neighbor& y : knn.neighbors[x.id]) {
          if (seen.insert(y.id).second) {
            candidates.push_back(
                {y.id, distance(static_cast<int32_t>(p), y.id)});
          }
        }
      }
    }
    std::sort(candidates.begin(), candidates.end());
    extension_edges[p] = static_cast<uint32_t>(candidates.size());

    // Redundant neighbors removal (lines 9-12): scanning nearest-first,
    // drop y when some kept x satisfies δ(x, y) <= δ(y, p).
    auto& out = index.adjacency_[p];
    out.clear();
    if (config.remove_redundant) {
      std::vector<Neighbor> kept;
      for (const Neighbor& y : candidates) {
        if (kept.size() >= config.max_degree) break;
        bool redundant = false;
        for (const Neighbor& x : kept) {
          if (distance(x.id, y.id) <= y.distance) {
            redundant = true;
            break;
          }
        }
        if (!redundant) kept.push_back(y);
      }
      out.reserve(kept.size());
      for (const Neighbor& nb : kept) out.push_back(nb.id);
    } else {
      const size_t limit = std::min(candidates.size(), config.max_degree);
      out.reserve(limit);
      for (size_t i = 0; i < limit; ++i) out.push_back(candidates[i].id);
    }
    refine_dists[p] = dist_count;
  });
  for (size_t p = 0; p < n; ++p) {
    local_stats.edges_after_extension += extension_edges[p];
    local_stats.distance_computations += refine_dists[p];
  }
  local_stats.refine_seconds = refine_timer.ElapsedSeconds();

  // --- Connectivity repair: the kNN graph of clustered data can be
  // disconnected, which would make whole clusters unreachable from the
  // navigating node. Link the navigating node to the nearest point of
  // each unreachable component (these are exactly the "highway" edges of
  // §IV-A, guaranteeing the greedy search can leave the entry cluster).
  {
    std::vector<char> reachable(n, 0);
    std::vector<int32_t> stack;
    auto bfs_from = [&](int32_t start) {
      stack.push_back(start);
      reachable[start] = 1;
      while (!stack.empty()) {
        const int32_t v = stack.back();
        stack.pop_back();
        for (int32_t u : index.adjacency_[v]) {
          if (!reachable[u]) {
            reachable[u] = 1;
            stack.push_back(u);
          }
        }
      }
    };
    bfs_from(index.navigating_node_);
    for (;;) {
      int32_t nearest = -1;
      float nearest_dist = 0.0f;
      for (size_t u = 0; u < n; ++u) {
        if (reachable[u]) continue;
        ++local_stats.distance_computations;
        const float dist =
            squared(index.navigating_node_, static_cast<int32_t>(u));
        if (nearest < 0 || dist < nearest_dist) {
          nearest = static_cast<int32_t>(u);
          nearest_dist = dist;
        }
      }
      if (nearest < 0) break;
      index.adjacency_[index.navigating_node_].push_back(nearest);
      ++local_stats.connectivity_edges;
      bfs_from(nearest);
    }
  }

  local_stats.edges_final = index.NumEdges();
  local_stats.build_seconds = total_timer.ElapsedSeconds();
  KPEF_COUNTER_ADD(obs::kPgindexBuildsTotal, 1);
  KPEF_COUNTER_ADD(obs::kPgindexBuildDistanceComputations,
                   local_stats.distance_computations);
  if (stats) *stats = local_stats;
  return index;
}

std::vector<Neighbor> PGIndex::SearchImpl(std::span<const float> padded_query,
                                          size_t m, size_t ef,
                                          SearchStats& local_stats,
                                          size_t& pool_occupancy) const {
  const size_t n = points_.rows();
  std::vector<Neighbor> result;
  if (n == 0 || m == 0) return result;
  const size_t pool_size = std::max(ef, m);
  // Squared distance throughout the greedy loop; sqrt once on the
  // surviving pool at the end.
  auto distance = [&](int32_t id) {
    ++local_stats.distance_computations;
    return SquaredL2Distance(points_.PaddedRow(id), padded_query);
  };

  // Best-first search from the navigating node with a bounded result pool
  // (§IV-B): candidates ascending, pool as max-heap of size pool_size.
  std::priority_queue<Neighbor, std::vector<Neighbor>,
                      std::greater<Neighbor>>
      candidates;
  std::priority_queue<Neighbor> pool;  // max-heap: worst on top
  std::vector<char> visited(n, 0);

  const Neighbor entry{navigating_node_, distance(navigating_node_)};
  candidates.push(entry);
  pool.push(entry);
  visited[navigating_node_] = 1;

  while (!candidates.empty()) {
    const Neighbor current = candidates.top();
    candidates.pop();
    if (pool.size() >= pool_size && current.distance > pool.top().distance) {
      break;  // Cannot improve the pool anymore.
    }
    ++local_stats.hops;
    for (int32_t u : adjacency_[current.id]) {
      if (visited[u]) continue;
      visited[u] = 1;
      const Neighbor next{u, distance(u)};
      if (pool.size() < pool_size || next.distance < pool.top().distance) {
        candidates.push(next);
        pool.push(next);
        if (pool.size() > pool_size) pool.pop();
      }
    }
  }
  pool_occupancy = pool.size();
  result.reserve(pool.size());
  while (!pool.empty()) {
    result.push_back(pool.top());
    pool.pop();
  }
  std::reverse(result.begin(), result.end());
  if (result.size() > m) result.resize(m);
  for (Neighbor& nb : result) nb.distance = std::sqrt(nb.distance);
  return result;
}

std::vector<Neighbor> PGIndex::Search(std::span<const float> query, size_t m,
                                      size_t ef, SearchStats* stats) const {
  KPEF_TRACE_SPAN("pgindex.search");
  const AlignedVector padded = PadToAligned(query);
  SearchStats local_stats;
  size_t pool_occupancy = 0;
  Timer search_timer;
  std::vector<Neighbor> result =
      SearchImpl({padded.data(), padded.size()}, m, ef, local_stats,
                 pool_occupancy);
  local_stats.search_ms = search_timer.ElapsedMillis();
  // The greedy loop above accumulated into stack-local stats only;
  // concurrent searches over a shared (const) index merge here, once.
  KPEF_COUNTER_ADD(obs::kPgindexSearchesTotal, 1);
  KPEF_COUNTER_ADD(obs::kPgindexDistanceComputations,
                   local_stats.distance_computations);
  KPEF_HISTOGRAM_OBSERVE(obs::kPgindexSearchHops, local_stats.hops);
  KPEF_HISTOGRAM_OBSERVE(obs::kPgindexCandidatePoolOccupancy, pool_occupancy);
  if (stats) *stats = local_stats;
  return result;
}

std::vector<std::vector<Neighbor>> PGIndex::SearchBatch(
    const Matrix& queries, size_t m, size_t ef,
    std::vector<SearchStats>* stats, ThreadPool* pool,
    const CancelToken& cancel) const {
  KPEF_TRACE_SPAN("pgindex.search_batch");
  const size_t batch = queries.rows();
  std::vector<std::vector<Neighbor>> results(batch);
  std::vector<SearchStats> local_stats(batch);
  if (batch == 0) {
    if (stats) stats->clear();
    return results;
  }
  KPEF_CHECK(points_.rows() == 0 || queries.cols() == points_.cols())
      << "query dimensionality does not match the index";
  std::vector<size_t> occupancy(batch, 0);
  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::Default();
  const bool cancellable = cancel.CanBeCancelled();
  // Query rows are already padded/aligned by Matrix, so each task reads
  // its row in place; every output slot is per-query, so the batch is
  // trivially deterministic. Cancellation is checked once per query:
  // a query either runs to completion or is skipped whole.
  ParallelFor(p, batch, [&](size_t q) {
    if (cancellable && cancel.IsCancelled()) {
      local_stats[q].cancelled = true;
      return;
    }
    Timer search_timer;
    results[q] = SearchImpl(queries.PaddedRow(q), m, ef, local_stats[q],
                            occupancy[q]);
    local_stats[q].search_ms = search_timer.ElapsedMillis();
  });
  // Merge per-query stats through the registry once for the whole batch.
  uint64_t total_distances = 0;
  for (const SearchStats& s : local_stats) {
    total_distances += s.distance_computations;
  }
  KPEF_COUNTER_ADD(obs::kPgindexSearchesTotal, batch);
  KPEF_COUNTER_ADD(obs::kPgindexBatchSearchesTotal, 1);
  KPEF_COUNTER_ADD(obs::kPgindexDistanceComputations, total_distances);
  for (size_t q = 0; q < batch; ++q) {
    KPEF_HISTOGRAM_OBSERVE(obs::kPgindexSearchHops, local_stats[q].hops);
    KPEF_HISTOGRAM_OBSERVE(obs::kPgindexCandidatePoolOccupancy, occupancy[q]);
  }
  if (stats) *stats = std::move(local_stats);
  return results;
}

size_t PGIndex::NumEdges() const {
  size_t total = 0;
  for (const auto& nbrs : adjacency_) total += nbrs.size();
  return total;
}

size_t PGIndex::MemoryUsageBytes() const {
  size_t bytes = points_.PaddedSize() * sizeof(float);
  for (const auto& nbrs : adjacency_) {
    bytes += nbrs.size() * sizeof(int32_t) + sizeof(std::vector<int32_t>);
  }
  return bytes;
}

namespace {

constexpr uint32_t kPGIndexMagic = 0x4B504749;  // "KPGI"
constexpr uint32_t kPGIndexVersion = 1;

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& in, T& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  return static_cast<bool>(in);
}

}  // namespace

Status PGIndex::Save(std::ostream& out) const {
  WritePod(out, kPGIndexMagic);
  WritePod(out, kPGIndexVersion);
  WritePod(out, static_cast<uint64_t>(points_.rows()));
  WritePod(out, static_cast<uint64_t>(points_.cols()));
  WritePod(out, navigating_node_);
  // Row-wise so the on-disk layout stays dense (padding never persists).
  for (size_t r = 0; r < points_.rows(); ++r) {
    auto row = points_.Row(r);
    out.write(reinterpret_cast<const char*>(row.data()),
              static_cast<std::streamsize>(row.size() * sizeof(float)));
  }
  for (const auto& nbrs : adjacency_) {
    WritePod(out, static_cast<uint32_t>(nbrs.size()));
    out.write(reinterpret_cast<const char*>(nbrs.data()),
              static_cast<std::streamsize>(nbrs.size() * sizeof(int32_t)));
  }
  if (!out) return Status::IOError("write failed");
  return Status::OK();
}

Status PGIndex::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  KPEF_RETURN_IF_ERROR(Save(out));
  out.close();
  if (!out) return Status::IOError("flush failed for " + path);
  return Status::OK();
}

StatusOr<PGIndex> PGIndex::Load(std::istream& in) {
  uint32_t magic = 0, version = 0;
  uint64_t rows = 0, cols = 0;
  int32_t navigating = -1;
  if (!ReadPod(in, magic) || magic != kPGIndexMagic) {
    return Status::InvalidArgument("not a kpef PG-Index file");
  }
  if (!ReadPod(in, version) || version != kPGIndexVersion) {
    return Status::InvalidArgument("unsupported PG-Index version");
  }
  if (!ReadPod(in, rows) || !ReadPod(in, cols) || !ReadPod(in, navigating)) {
    return Status::InvalidArgument("corrupt PG-Index header");
  }
  if (rows > (1ull << 32) || cols > (1ull << 20) ||
      rows * cols > (1ull << 31)) {
    return Status::InvalidArgument("implausible PG-Index dimensions");
  }
  if (rows > 0 &&
      (navigating < 0 || static_cast<uint64_t>(navigating) >= rows)) {
    return Status::InvalidArgument("navigating node out of range");
  }
  PGIndex index;
  index.navigating_node_ = navigating;
  index.points_ = Matrix(rows, cols);
  for (uint64_t r = 0; r < rows; ++r) {
    auto row = index.points_.Row(r);
    in.read(reinterpret_cast<char*>(row.data()),
            static_cast<std::streamsize>(row.size() * sizeof(float)));
  }
  if (!in) return Status::InvalidArgument("truncated PG-Index embeddings");
  index.adjacency_.resize(rows);
  for (uint64_t v = 0; v < rows; ++v) {
    uint32_t degree = 0;
    if (!ReadPod(in, degree) || degree > rows) {
      return Status::InvalidArgument("corrupt adjacency header");
    }
    auto& nbrs = index.adjacency_[v];
    nbrs.resize(degree);
    in.read(reinterpret_cast<char*>(nbrs.data()),
            static_cast<std::streamsize>(degree * sizeof(int32_t)));
    if (!in) return Status::InvalidArgument("truncated adjacency");
    for (int32_t u : nbrs) {
      if (u < 0 || static_cast<uint64_t>(u) >= rows) {
        return Status::InvalidArgument("neighbor id out of range");
      }
    }
  }
  return index;
}

StatusOr<PGIndex> PGIndex::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  return Load(in);
}

}  // namespace kpef

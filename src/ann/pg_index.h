// Proximity graph-based document index (§IV-A, Algorithm 2) and the
// greedy best-first search over it (§IV-B).

#ifndef KPEF_ANN_PG_INDEX_H_
#define KPEF_ANN_PG_INDEX_H_

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "ann/neighbor.h"
#include "ann/nndescent.h"
#include "common/cancellation.h"
#include "common/status.h"
#include "embed/matrix.h"

namespace kpef {

struct PGIndexConfig {
  /// kNN graph degree used for initialization.
  size_t knn_k = 10;
  NNDescentConfig nndescent;
  /// Build the initial kNN graph exactly (O(n^2); small corpora/tests).
  bool exact_knn = false;
  /// Algorithm 2 lines 7-8: add two-hop "highway" neighbors.
  bool extend_neighbors = true;
  /// Algorithm 2 lines 9-12: occlusion-prune redundant neighbors.
  bool remove_redundant = true;
  /// Hard cap on a node's out-degree after refinement.
  size_t max_degree = 48;
};

/// Build-time diagnostics (Table VI).
struct PGIndexBuildStats {
  double build_seconds = 0.0;
  double knn_seconds = 0.0;
  double refine_seconds = 0.0;
  uint64_t distance_computations = 0;
  size_t edges_after_knn = 0;
  size_t edges_after_extension = 0;
  size_t edges_final = 0;
  /// Highway edges added to connect otherwise-unreachable components.
  size_t connectivity_edges = 0;
};

/// The index: a navigating entry node plus a pruned neighborhood graph
/// over the document embeddings (which it owns a copy of).
class PGIndex {
 public:
  /// Builds the index over the rows of `points` per Algorithm 2.
  static PGIndex Build(const Matrix& points, const PGIndexConfig& config,
                       PGIndexBuildStats* stats = nullptr);

  struct SearchStats {
    uint64_t distance_computations = 0;
    /// Nodes whose adjacency lists were expanded.
    uint64_t hops = 0;
    /// Wall-clock time of this query's own greedy search (batch queries
    /// overlap in time, so this is the honest per-query retrieval cost).
    double search_ms = 0.0;
    /// True when SearchBatch skipped this query because the cancel token
    /// had fired; its result list is empty.
    bool cancelled = false;
  };

  /// Returns the approximate `m` nearest points to `query`, ascending by
  /// distance. `ef` is the candidate-pool size (clamped up to m).
  std::vector<Neighbor> Search(std::span<const float> query, size_t m,
                               size_t ef = 0, SearchStats* stats = nullptr) const;

  /// Searches every row of `queries` (one query per row, same
  /// dimensionality as the indexed points), fanning the batch across
  /// `pool` (nullptr = ThreadPool::Default()). Results are identical to
  /// calling Search per row; per-query stats land in `*stats` (resized to
  /// the batch) and the metrics registry is updated once per batch. A
  /// non-null `cancel` token is checked at per-query boundaries: queries
  /// whose task starts after the token fired are skipped (empty result,
  /// SearchStats::cancelled set), so an expired deadline yields partial
  /// batch results instead of a wedged call.
  std::vector<std::vector<Neighbor>> SearchBatch(
      const Matrix& queries, size_t m, size_t ef = 0,
      std::vector<SearchStats>* stats = nullptr, ThreadPool* pool = nullptr,
      const CancelToken& cancel = CancelToken()) const;

  int32_t navigating_node() const { return navigating_node_; }
  size_t NumPoints() const { return points_.rows(); }
  const std::vector<int32_t>& NeighborsOf(int32_t node) const {
    return adjacency_[node];
  }
  const Matrix& points() const { return points_; }

  /// Persists the index (embeddings + adjacency + navigating node) in a
  /// host-endian binary format, enabling the paper's offline-build /
  /// online-serve split.
  Status Save(const std::string& path) const;
  Status Save(std::ostream& out) const;

  /// Loads an index written by Save.
  static StatusOr<PGIndex> Load(const std::string& path);
  static StatusOr<PGIndex> Load(std::istream& in);

  /// Total directed edges in the refined graph.
  size_t NumEdges() const;
  /// Approximate heap footprint: embeddings + adjacency (Table VI).
  size_t MemoryUsageBytes() const;

 private:
  PGIndex() = default;

  /// Greedy best-first search working in squared distance over a padded
  /// query span (length points_.stride()); returns true-L2 results.
  std::vector<Neighbor> SearchImpl(std::span<const float> padded_query,
                                   size_t m, size_t ef, SearchStats& stats,
                                   size_t& pool_occupancy) const;

  Matrix points_;
  std::vector<std::vector<int32_t>> adjacency_;
  int32_t navigating_node_ = -1;
};

}  // namespace kpef

#endif  // KPEF_ANN_PG_INDEX_H_

// Proximity graph-based document index (§IV-A, Algorithm 2) and the
// greedy best-first search over it (§IV-B).
//
// Since PR 7 the index is laid out for the traversal's memory access
// pattern (DESIGN.md §12):
//  - nodes are relabeled into BFS order from the navigating node at
//    Build/Load finalization, so graph neighbors tend to be memory
//    neighbors (the permutation is kept internally; every public id —
//    navigating_node(), NeighborsOf(), search results — is an *external*
//    id, i.e. the row number of the original point matrix);
//  - adjacency is one flat CSR array instead of per-node vectors;
//  - stored vectors are SQ8-quantized (ann/sq8.h) and the greedy loop
//    scores 64-byte-aligned code rows with the dispatched asymmetric
//    int8 kernel, then exact-reranks the top rerank_factor * m
//    candidates in fp32 so recall stays contractual;
//  - SearchBatch interleaves frontier expansion across query groups with
//    shared visited/heap arenas (no per-query allocation), servicing
//    several queries' distance evaluations per pass over a node's
//    adjacency list.

#ifndef KPEF_ANN_PG_INDEX_H_
#define KPEF_ANN_PG_INDEX_H_

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "ann/neighbor.h"
#include "ann/nndescent.h"
#include "ann/sq8.h"
#include "common/cancellation.h"
#include "common/status.h"
#include "embed/matrix.h"

namespace kpef {

struct PGIndexConfig {
  /// kNN graph degree used for initialization.
  size_t knn_k = 10;
  NNDescentConfig nndescent;
  /// Build the initial kNN graph exactly (O(n^2); small corpora/tests).
  bool exact_knn = false;
  /// Algorithm 2 lines 7-8: add two-hop "highway" neighbors.
  bool extend_neighbors = true;
  /// Algorithm 2 lines 9-12: occlusion-prune redundant neighbors.
  bool remove_redundant = true;
  /// Hard cap on a node's out-degree after refinement.
  size_t max_degree = 48;
  /// SQ8-quantize the stored vectors at finalization: the greedy
  /// traversal then runs over compressed code rows with an exact fp32
  /// rerank of the survivors. OFF keeps the pure-fp32 traversal.
  bool quantize = true;
  /// Exact-rerank depth of the quantized path: the top
  /// rerank_factor * m SQ8 candidates are re-scored in fp32 before the
  /// final top-m cut (values < 1 are clamped to 1).
  double rerank_factor = 2.0;
};

/// Build-time diagnostics (Table VI).
struct PGIndexBuildStats {
  double build_seconds = 0.0;
  double knn_seconds = 0.0;
  double refine_seconds = 0.0;
  uint64_t distance_computations = 0;
  size_t edges_after_knn = 0;
  size_t edges_after_extension = 0;
  size_t edges_final = 0;
  /// Highway edges added to connect otherwise-unreachable components
  /// (placed at the component's nearest reachable node, so individual
  /// nodes may exceed the refine degree cap by the highways they carry).
  size_t connectivity_edges = 0;
  /// Edges added by the reverse pass (p inserted into q's list for kept
  /// p->q while q had spare capacity under the degree cap).
  size_t reverse_edges = 0;
};

/// The index: a navigating entry node plus a pruned neighborhood graph
/// over the document embeddings (which it owns a copy of).
class PGIndex {
 public:
  /// Builds the index over the rows of `points` per Algorithm 2.
  static PGIndex Build(const Matrix& points, const PGIndexConfig& config,
                       PGIndexBuildStats* stats = nullptr);

  struct SearchStats {
    /// fp32 distance evaluations (the whole traversal on the exact
    /// path; only the rerank pass on the quantized path).
    uint64_t distance_computations = 0;
    /// SQ8 asymmetric distance evaluations (quantized traversal only).
    uint64_t sq8_distance_computations = 0;
    /// Candidates exact-reranked in fp32 (quantized path only).
    uint64_t rerank_candidates = 0;
    /// Nodes whose adjacency lists were expanded.
    uint64_t hops = 0;
    /// Wall-clock time of this query's own greedy search. Batch groups
    /// run interleaved, so there the group's wall-clock is attributed
    /// to its queries proportionally to their distance evaluations (an
    /// honest per-query cost estimate; the batch overlaps in time).
    double search_ms = 0.0;
    /// True when SearchBatch skipped this query because the cancel token
    /// had fired; its result list is empty.
    bool cancelled = false;
  };

  /// Per-call search knobs beyond the result count.
  struct SearchParams {
    /// Results returned (ascending by true L2 distance).
    size_t m = 10;
    /// Candidate-pool size of the greedy loop (clamped up to the rerank
    /// depth; 0 = just the rerank depth / m).
    size_t ef = 0;
    /// Overrides the index's rerank factor for this call (0 = keep).
    double rerank_factor = 0.0;
    /// Forces the pure-fp32 traversal even on a quantized index
    /// (ablation/bench baseline; no-op when the index has no codes).
    bool force_exact = false;
  };

  /// Returns the approximate `m` nearest points to `query`, ascending by
  /// distance. `ef` is the candidate-pool size (clamped up to m).
  std::vector<Neighbor> Search(std::span<const float> query, size_t m,
                               size_t ef = 0, SearchStats* stats = nullptr) const;

  /// Search with explicit per-call knobs.
  std::vector<Neighbor> Search(std::span<const float> query,
                               const SearchParams& params,
                               SearchStats* stats = nullptr) const;

  /// Searches every row of `queries` (one query per row, same
  /// dimensionality as the indexed points), fanning groups of queries
  /// across `pool` (nullptr = ThreadPool::Default()). Within a group
  /// the greedy searches run in lockstep over shared arenas; results
  /// are identical to calling Search per row for any pool size and any
  /// batch composition. Per-query stats land in `*stats` (resized to
  /// the batch) and the metrics registry is updated once per batch. A
  /// non-null `cancel` token is checked at per-query boundaries:
  /// queries whose group starts after the token fired are skipped
  /// (empty result, SearchStats::cancelled set), so an expired deadline
  /// yields partial batch results instead of a wedged call.
  std::vector<std::vector<Neighbor>> SearchBatch(
      const Matrix& queries, size_t m, size_t ef = 0,
      std::vector<SearchStats>* stats = nullptr, ThreadPool* pool = nullptr,
      const CancelToken& cancel = CancelToken()) const;

  /// SearchBatch with explicit per-call knobs.
  std::vector<std::vector<Neighbor>> SearchBatch(
      const Matrix& queries, const SearchParams& params,
      std::vector<SearchStats>* stats = nullptr, ThreadPool* pool = nullptr,
      const CancelToken& cancel = CancelToken()) const;

  int32_t navigating_node() const { return navigating_node_; }
  size_t NumPoints() const { return points_.rows(); }
  /// Out-neighbors of external node id `node`, as external ids, in the
  /// build's refinement order (returned by value: storage is internally
  /// relabeled).
  std::vector<int32_t> NeighborsOf(int32_t node) const;
  /// The stored embeddings in the *internal* (BFS-relabeled) row order;
  /// row i holds the point whose external id is permutation()[i]. Use
  /// rows()/cols() for shape checks.
  const Matrix& points() const { return points_; }
  /// Internal row -> external id mapping of the BFS relabeling.
  const std::vector<int32_t>& permutation() const { return to_external_; }

  /// True when the index carries SQ8 codes (quantized traversal).
  bool quantized() const { return !codes_.empty(); }
  double rerank_factor() const { return rerank_factor_; }
  /// Serving-time recall knob (quantized path); values < 1 clamp to 1.
  void set_rerank_factor(double factor);

  /// Persists the index (embeddings + adjacency + navigating node and,
  /// when quantized, the SQ8 code matrix) in a host-endian binary
  /// format, enabling the paper's offline-build / online-serve split.
  /// Everything is written in external-id order, so version-1 readers'
  /// expectations about row identity still hold.
  Status Save(const std::string& path) const;
  Status Save(std::ostream& out) const;

  /// Loads an index written by Save. Accepts version 1 (fp32-only, pre
  /// PR 7) and version 2 (fp32 + optional SQ8 codes) artifacts; a v1
  /// artifact is quantized on load so old artifacts get the fast path.
  static StatusOr<PGIndex> Load(const std::string& path);
  static StatusOr<PGIndex> Load(std::istream& in);

  /// Total directed edges in the refined graph (base CSR + overlay).
  size_t NumEdges() const { return adj_.size() + extra_edges_; }
  /// Approximate heap footprint: embeddings + adjacency + codes
  /// (Table VI).
  size_t MemoryUsageBytes() const;

  /// Per-insert knobs of the streaming append path.
  struct InsertParams {
    /// Degree cap of a new node's pruned out-list and of overlay growth
    /// on existing nodes (mirror of PGIndexConfig::max_degree).
    size_t max_degree = 48;
    /// Candidate-pool size of the locating search per new point.
    size_t ef = 64;
  };
  struct InsertStats {
    size_t inserted = 0;
    size_t edges_added = 0;
  };

  /// Appends every row of `new_points` to the index (external id == its
  /// new row number, preserving row identity for serialized prefixes).
  /// Each point is located by a greedy search from the navigating node,
  /// its candidate list occlusion-pruned with Algorithm 2's rule, and
  /// the surviving edges placed in a delta overlay on top of the frozen
  /// base CSR (reverse edges keep the new node reachable). Quantized
  /// indexes encode the new rows against the frozen SQ8 scales — the
  /// exact fp32 rerank absorbs any extra quantization error. NOT
  /// thread-safe against concurrent searches; callers publish a copy
  /// (RCU) after mutating a private staging index.
  Status InsertBatch(const Matrix& new_points, const InsertParams& params,
                     InsertStats* stats = nullptr);

  /// Directed overlay edges not yet folded into the base CSR.
  size_t PendingDeltaEdges() const { return extra_edges_; }

  /// Folds the overlay into a fresh base layout: re-runs the BFS
  /// relabeling + CSR flatten (and re-encodes SQ8 scales over the full
  /// point set) exactly as Build/Load finalization would on the merged
  /// graph. After this PendingDeltaEdges() == 0 and the hot path walks
  /// pure CSR again.
  void CompactDelta();

 private:
  PGIndex() = default;

  struct GroupSlot;
  struct SearchArena;

  /// Thread-local scratch (visited stamps, heap storage, prepared
  /// queries) reused across searches on this thread.
  static SearchArena& LocalArena();

  /// Shared by Build and Load: BFS-relabels the external-order graph
  /// into the cache-aware internal layout and installs the SQ8 codes
  /// (`codes` non-null reuses pre-encoded external-order rows; else the
  /// permuted points are encoded when `quantize`).
  void FinalizeLayout(const Matrix& ext_points,
                      std::vector<std::vector<int32_t>>&& ext_adjacency,
                      int32_t navigating_external, bool quantize,
                      const Sq8Codes* ext_codes);

  /// Runs `count` greedy searches in lockstep; slots must be primed
  /// with query spans and stats sinks. Returns hops executed while two
  /// or more queries were live (the interleaving measure).
  uint64_t SearchGroup(GroupSlot* slots, size_t count,
                       const SearchParams& params, SearchArena& arena) const;

  /// Base-CSR out-neighbors; empty span for nodes appended after the
  /// last finalization (their edges live only in the overlay).
  std::span<const int32_t> InternalNeighbors(int32_t internal) const {
    if (static_cast<size_t>(internal) + 1 >= adj_offsets_.size()) return {};
    return {adj_.data() + adj_offsets_[internal],
            static_cast<size_t>(adj_offsets_[internal + 1] -
                                adj_offsets_[internal])};
  }

  /// Overlay out-neighbors of `internal` (empty when no inserts pend).
  std::span<const int32_t> ExtraNeighbors(int32_t internal) const {
    if (static_cast<size_t>(internal) >= extra_.size()) return {};
    return {extra_[internal].data(), extra_[internal].size()};
  }

  /// Base + overlay concatenated into `scratch` when the overlay is
  /// non-empty for this node; otherwise the base span, copy-free.
  std::span<const int32_t> MergedNeighbors(int32_t internal,
                                           std::vector<int32_t>& scratch) const;

  Matrix points_;                     // internal (BFS) row order
  std::vector<int64_t> adj_offsets_;  // CSR offsets, internal ids
  std::vector<int32_t> adj_;          // flat neighbor array, internal ids
  std::vector<int32_t> to_external_;  // internal -> external
  std::vector<int32_t> to_internal_;  // external -> internal
  Sq8Codes codes_;                    // empty when not quantized
  /// Streaming-insert overlay: per internal id, out-edges appended since
  /// the last finalization (sized to NumPoints() only while non-empty).
  std::vector<std::vector<int32_t>> extra_;
  size_t extra_edges_ = 0;
  double rerank_factor_ = 2.0;
  int32_t navigating_node_ = -1;  // external id
};

}  // namespace kpef

#endif  // KPEF_ANN_PG_INDEX_H_

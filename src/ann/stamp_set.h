// Epoch-stamped membership set over node ids, shared by the ANN build
// (NNDescent local joins) and the PG-Index search arenas. Begin() starts
// a fresh (empty) set in O(1) — no per-query O(n) clear — and TestAndSet
// is one array probe. Instances are meant to be reused across many
// queries (thread-local or arena-owned), so the backing array is
// allocated once and only grows.

#ifndef KPEF_ANN_STAMP_SET_H_
#define KPEF_ANN_STAMP_SET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace kpef {

class StampSet {
 public:
  /// Starts a fresh empty set over ids [0, n). O(1) amortized: bumps the
  /// epoch instead of clearing (the array is (re)allocated only when it
  /// must grow).
  void Begin(size_t n) {
    if (stamps_.size() < n) stamps_.assign(n, 0);
    ++epoch_;
  }

  /// Returns true if `id` was already present; marks it present.
  bool TestAndSet(int32_t id) {
    if (stamps_[id] == epoch_) return true;
    stamps_[id] = epoch_;
    return false;
  }

  /// Hints the cache that `id`'s stamp is about to be probed. The stamp
  /// array is 8 bytes per node — bigger than L2 for large corpora — so
  /// the probe in TestAndSet is otherwise a dependent miss on the search
  /// hot path.
  void Prefetch(int32_t id) const {
    __builtin_prefetch(stamps_.data() + id, /*rw=*/1, /*locality=*/3);
  }

 private:
  std::vector<uint64_t> stamps_;
  uint64_t epoch_ = 0;
};

/// Dense bitmap membership set over node ids: one bit per id, same
/// interface as StampSet. Begin() is a memset over n/8 bytes instead of
/// O(1) — but for ANN-search corpora that is a few tens of KB, and the
/// payoff is cache footprint: a 64-byte line holds 512 ids' bits, so a
/// whole query's visited set stays L1/L2-resident where the 8-byte
/// stamp array (MBs per slot) turns every random probe into a far-cache
/// access. The PG-Index search arenas hold one per lockstep slot; a
/// full 64-slot batch group needs ~2.5 MB of bitmaps for a 320k-node
/// graph versus ~160 MB of stamp arrays.
class VisitedBitset {
 public:
  /// Starts a fresh empty set over ids [0, n).
  void Begin(size_t n) {
    const size_t words = (n + 63) / 64;
    if (words_.size() < words) words_.resize(words);
    std::fill_n(words_.data(), words, uint64_t{0});
  }

  /// Returns true if `id` was already present; marks it present.
  bool TestAndSet(int32_t id) {
    const uint32_t uid = static_cast<uint32_t>(id);
    uint64_t& w = words_[uid >> 6];
    const uint64_t bit = uint64_t{1} << (uid & 63);
    const bool present = (w & bit) != 0;
    w |= bit;
    return present;
  }

  /// Hints the cache that `id`'s word is about to be probed.
  void Prefetch(int32_t id) const {
    __builtin_prefetch(words_.data() + (static_cast<uint32_t>(id) >> 6),
                       /*rw=*/1, /*locality=*/3);
  }

 private:
  std::vector<uint64_t> words_;
};

}  // namespace kpef

#endif  // KPEF_ANN_STAMP_SET_H_

#include "serve/service.h"

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <utility>

#include "common/build_info.h"
#include "common/timer.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/pipeline_metrics.h"
#include "obs/process_metrics.h"
#include "serve/json_util.h"

namespace kpef::serve {

namespace {

HttpResponse JsonError(int status, std::string_view message) {
  HttpResponse response;
  response.status = status;
  response.body.append("{\"error\":");
  AppendJsonString(message, &response.body);
  response.body.append("}\n");
  return response;
}

/// Keeps [A-Za-z0-9._-] up to 64 bytes; everything else (control bytes,
/// UTF-8 junk, separators a hostile client might use for header or log
/// injection) is dropped, not escaped — the id round-trips through a
/// response header, the access log, and a query parameter.
std::string SanitizeRequestId(const std::string& raw) {
  std::string out;
  out.reserve(std::min<size_t>(raw.size(), 64));
  for (char c : raw) {
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '_' ||
        c == '.') {
      out.push_back(c);
      if (out.size() == 64) break;
    }
  }
  return out;
}

uint64_t MsToNs(double ms) {
  return ms <= 0.0 ? 0 : static_cast<uint64_t>(ms * 1e6);
}

/// {"papers":[{"text":..,"authors":[..],"venue":..,"topics":[..],
/// "cites":[..]}]} -> IngestBatch. Every field but "text" is optional;
/// anything of the wrong shape is a 400, not a silent skip.
StatusOr<IngestBatch> IngestBatchFromJson(const JsonValue& doc) {
  if (!doc.is_object()) {
    return Status::InvalidArgument("body must be a JSON object");
  }
  const JsonValue* papers = doc.Find("papers");
  if (papers == nullptr || papers->type != JsonValue::Type::kArray) {
    return Status::InvalidArgument("\"papers\" must be an array");
  }
  const auto string_list =
      [](const JsonValue& paper, std::string_view key,
         std::vector<std::string>* out) -> Status {
    const JsonValue* list = paper.Find(key);
    if (list == nullptr) return Status::OK();
    if (list->type != JsonValue::Type::kArray) {
      return Status::InvalidArgument(std::string(key) + " must be an array");
    }
    out->reserve(list->array_items.size());
    for (const JsonValue& item : list->array_items) {
      if (!item.is_string()) {
        return Status::InvalidArgument(std::string(key) +
                                       " entries must be strings");
      }
      out->push_back(item.string_value);
    }
    return Status::OK();
  };
  IngestBatch batch;
  batch.papers.reserve(papers->array_items.size());
  for (const JsonValue& entry : papers->array_items) {
    if (!entry.is_object()) {
      return Status::InvalidArgument("papers entries must be objects");
    }
    IngestPaper paper;
    const JsonValue* text = entry.Find("text");
    if (text == nullptr || !text->is_string() || text->string_value.empty()) {
      return Status::InvalidArgument(
          "every paper needs a non-empty \"text\"");
    }
    paper.text = text->string_value;
    if (const JsonValue* venue = entry.Find("venue")) {
      if (!venue->is_string()) {
        return Status::InvalidArgument("venue must be a string");
      }
      paper.venue = venue->string_value;
    }
    KPEF_RETURN_IF_ERROR(string_list(entry, "authors", &paper.authors));
    KPEF_RETURN_IF_ERROR(string_list(entry, "topics", &paper.topics));
    KPEF_RETURN_IF_ERROR(string_list(entry, "cites", &paper.cites));
    batch.papers.push_back(std::move(paper));
  }
  return batch;
}

}  // namespace

ExpertSearchService::ExpertSearchService(ServiceConfig config, EngineInfo info,
                                         BatchExecuteFn execute, LabelFn label,
                                         ServiceHooks hooks)
    : config_(std::move(config)),
      info_(std::move(info)),
      label_(std::move(label)),
      hooks_(std::move(hooks)),
      slow_ring_(config_.slow_ring_capacity),
      batcher_(config_.batcher, std::move(execute)) {
  // Register the full metric schema (latency histograms get their wide
  // bounds) before the first request observes anything.
  obs::WarmPipelineMetrics();
  obs::Tracer::Global().SetMode(config_.trace_mode);
  if (config_.access_log_sink) {
    access_log_ = std::make_unique<obs::RequestLog>(config_.access_log_sink);
  } else if (!config_.access_log_path.empty()) {
    access_log_ = obs::RequestLog::Open(config_.access_log_path);
  }
  if (access_log_) {
    access_log_->WriteHeader(info_.display_name.empty() ? "kpef_serve"
                                                        : info_.display_name);
  }
}

std::unique_ptr<ExpertSearchService> ExpertSearchService::ForEngine(
    ExpertFindingEngine* engine, ServiceConfig config) {
  BatchExecuteFn execute = [engine](const std::vector<std::string>& texts,
                                    size_t top_n,
                                    const BatchQueryOptions& options,
                                    std::vector<QueryStats>* stats) {
    return engine->FindExpertsBatch(texts, top_n, options, stats);
  };
  const HeteroGraph* graph = &engine->dataset().graph;
  LabelFn label = [graph](NodeId id) { return graph->Label(id); };
  return std::make_unique<ExpertSearchService>(
      config, engine->Info(), std::move(execute), std::move(label));
}

std::unique_ptr<ExpertSearchService> ExpertSearchService::ForEngineGroup(
    EngineGroup* group, ServiceConfig config, IngestCoordinator* ingest) {
  BatchExecuteFn execute = [group](const std::vector<std::string>& texts,
                                   size_t top_n,
                                   const BatchQueryOptions& options,
                                   std::vector<QueryStats>* stats) {
    return group->FindExpertsBatch(texts, top_n, options, stats);
  };
  // Labels resolve against the serving generation's graph: streaming
  // ingest publishes generations whose grown graph carries node ids the
  // base dataset has never heard of, so the lookup goes through
  // Snapshot() (with a bounds guard) instead of capturing the base
  // graph pointer.
  LabelFn label = [group](NodeId id) {
    const std::shared_ptr<const EngineGroup::Generation> gen =
        group->Snapshot();
    const HeteroGraph& graph = gen->owned_dataset != nullptr
                                   ? gen->owned_dataset->graph
                                   : group->dataset().graph;
    if (id < 0 || static_cast<size_t>(id) >= graph.NumNodes()) {
      return "node-" + std::to_string(id);
    }
    return graph.Label(id);
  };
  ServiceHooks hooks;
  hooks.info = [group] { return group->Info(); };
  hooks.reload = [group](const std::string& dir) -> StatusOr<uint64_t> {
    KPEF_RETURN_IF_ERROR(group->Reload(dir));
    return group->generation();
  };
  hooks.sample = [group] { group->SampleMetrics(); };
  if (ingest != nullptr) {
    hooks.ingest = [ingest](const IngestBatch& batch) {
      return ingest->Apply(batch);
    };
    hooks.ingest_stats = [ingest] { return ingest->Stats(); };
  }
  return std::make_unique<ExpertSearchService>(config, group->Info(),
                                               std::move(execute),
                                               std::move(label),
                                               std::move(hooks));
}

ExpertSearchService::~ExpertSearchService() { Drain(); }

void ExpertSearchService::Drain() {
  batcher_.Shutdown();
  if (reload_thread_.joinable()) reload_thread_.join();
  if (ingest_thread_.joinable()) ingest_thread_.join();
}

void ExpertSearchService::Handle(const HttpRequest& request,
                                 HttpServer::Responder respond) {
  KPEF_COUNTER_ADD(obs::kServeRequests, 1);
  const std::string_view path = request.Path();

  if (path == "/healthz") {
    if (request.method != "GET") {
      respond(JsonError(405, "use GET"));
      return;
    }
    // Live info (generation, shards, per-generation tallies) when an
    // EngineGroup is behind the service; the construction-time summary
    // otherwise.
    const EngineInfo info = hooks_.info ? hooks_.info() : info_;
    HttpResponse response;
    response.body.append("{\"status\":\"ok\",\"engine\":");
    AppendJsonString(info.display_name, &response.body);
    response.body.append(",\"papers\":");
    response.body.append(std::to_string(info.num_papers));
    response.body.append(",\"experts\":");
    response.body.append(std::to_string(info.num_experts));
    response.body.append(",\"dim\":");
    response.body.append(std::to_string(info.embedding_dim));
    response.body.append(",\"pg_index\":");
    response.body.append(info.has_index ? "true" : "false");
    response.body.append(",\"generation\":");
    response.body.append(std::to_string(info.generation));
    response.body.append(",\"shards\":");
    response.body.append(std::to_string(info.num_shards));
    response.body.append(",\"generation_queries\":");
    response.body.append(std::to_string(info.generation_queries));
    response.body.append(",\"artifact_dir\":");
    AppendJsonString(info.artifact_dir, &response.body);
    // Streaming-ingest state: live coordinator numbers when the hook is
    // wired, the generation's publish-time snapshot otherwise (all
    // zeros on a static deployment).
    uint64_t ingest_records = info.ingest_records;
    uint64_t ingest_wal_bytes = info.ingest_wal_bytes;
    uint64_t ingest_pending = info.ingest_pending_delta_edges;
    uint64_t ingest_merge_gen = info.ingest_last_merge_generation;
    if (hooks_.ingest_stats) {
      const IngestStats ingest = hooks_.ingest_stats();
      ingest_records = ingest.records_applied;
      ingest_wal_bytes = ingest.wal_bytes;
      ingest_pending = ingest.pending_delta_edges;
      ingest_merge_gen = ingest.last_merge_generation;
    }
    response.body.append(",\"ingest_records\":");
    response.body.append(std::to_string(ingest_records));
    response.body.append(",\"ingest_wal_bytes\":");
    response.body.append(std::to_string(ingest_wal_bytes));
    response.body.append(",\"ingest_pending_delta_edges\":");
    response.body.append(std::to_string(ingest_pending));
    response.body.append(",\"ingest_last_merge_generation\":");
    response.body.append(std::to_string(ingest_merge_gen));
    response.body.append(",\"git\":");
    AppendJsonString(
        info.git_hash.empty() ? BuildGitHash() : info.git_hash.c_str(),
        &response.body);
    response.body.append(",\"build\":");
    AppendJsonString(
        info.build_type.empty() ? BuildType() : info.build_type.c_str(),
        &response.body);
    response.body.append(",\"draining\":false}\n");
    respond(std::move(response));
    return;
  }

  if (path == "/metrics") {
    if (request.method != "GET") {
      respond(JsonError(405, "use GET"));
      return;
    }
    // Gauges like RSS and pool occupancy are meaningful at scrape time,
    // not at event time, so they are sampled here.
    obs::SampleProcessMetrics(config_.batcher.pool);
    if (hooks_.sample) hooks_.sample();
    HttpResponse response;
    response.content_type = "text/plain; version=0.0.4";
    response.body = obs::ExportPrometheusText();
    respond(std::move(response));
    return;
  }

  if (path == "/v1/admin/ingest") {
    if (request.method != "POST") {
      respond(JsonError(405, "use POST"));
      return;
    }
    HandleIngest(request, std::move(respond));
    return;
  }

  if (path == "/v1/admin/reload") {
    if (request.method != "POST") {
      respond(JsonError(405, "use POST"));
      return;
    }
    HandleReload(request, std::move(respond));
    return;
  }

  if (path == "/v1/debug/slow") {
    if (request.method != "GET") {
      respond(JsonError(405, "use GET"));
      return;
    }
    HandleDebugSlow(std::move(respond));
    return;
  }

  if (path == "/v1/debug/trace") {
    if (request.method != "GET") {
      respond(JsonError(405, "use GET"));
      return;
    }
    HandleDebugTrace(request, std::move(respond));
    return;
  }

  if (path == "/v1/find_experts") {
    if (request.method != "POST") {
      respond(JsonError(405, "use POST"));
      return;
    }
    HandleFindExperts(request, std::move(respond));
    return;
  }

  respond(JsonError(404, "unknown endpoint"));
}

std::string ExpertSearchService::RequestIdFor(const HttpRequest& request) {
  if (const std::string* raw = request.FindHeader("x-request-id")) {
    std::string id = SanitizeRequestId(*raw);
    if (!id.empty()) return id;
  }
  static std::atomic<uint64_t> generated{0};
  char buf[32];
  std::snprintf(buf, sizeof(buf), "req-%016" PRIx64,
                generated.fetch_add(1, std::memory_order_relaxed));
  return buf;
}

bool ExpertSearchService::IsSlow(double e2e_ms,
                                 const BatchResponse& result) const {
  return result.deadline_exceeded ||
         (config_.slow_e2e_ms > 0.0 && e2e_ms >= config_.slow_e2e_ms) ||
         (config_.slow_queue_wait_ms > 0.0 &&
          result.queue_wait_ms >= config_.slow_queue_wait_ms);
}

void ExpertSearchService::WriteAccessLog(const obs::RequestLogRecord& record) {
  if (access_log_) access_log_->Write(record);
}

void ExpertSearchService::HandleFindExperts(const HttpRequest& request,
                                            HttpServer::Responder respond) {
  obs::Tracer& tracer = obs::Tracer::Global();
  const uint64_t t0_ns = tracer.NowNanos();
  auto started = std::make_shared<Timer>();
  const std::string trace_id = RequestIdFor(request);
  const uint64_t seq = request_seq_.fetch_add(1, std::memory_order_relaxed);
  const bool head = config_.trace_head_every > 0 &&
                    seq % config_.trace_head_every == 0;
  const uint64_t trace_key = tracer.BeginTrace(trace_id, head);
  if (trace_key != 0) KPEF_COUNTER_ADD(obs::kServeTracesStarted, 1);

  const auto reject = [&](std::string_view message) {
    KPEF_COUNTER_ADD(obs::kServeBadRequests, 1);
    tracer.EndTrace(trace_key, false);
    obs::RequestLogRecord record;
    record.trace_id = trace_id;
    record.status = 400;
    record.e2e_ms = started->ElapsedMillis();
    record.sampled = head;
    WriteAccessLog(record);
    HttpResponse response = JsonError(400, message);
    response.extra_headers.emplace_back("x-request-id", trace_id);
    respond(std::move(response));
  };

  JsonValue doc;
  std::string parse_error;
  if (!ParseJson(request.body, &doc, &parse_error) || !doc.is_object()) {
    reject(parse_error.empty() ? "body must be a JSON object" : parse_error);
    return;
  }
  const JsonValue* query = doc.Find("query");
  if (query == nullptr || !query->is_string() ||
      query->string_value.empty()) {
    reject("\"query\" must be a non-empty string");
    return;
  }

  BatchRequest batch_request;
  batch_request.query = query->string_value;
  batch_request.top_n = config_.default_top_n;
  batch_request.trace_key = trace_key;
  if (const JsonValue* n = doc.Find("n")) {
    if (!n->is_number() || n->number_value < 1.0 ||
        n->number_value != std::floor(n->number_value)) {
      reject("\"n\" must be a positive integer");
      return;
    }
    batch_request.top_n = std::min<size_t>(
        static_cast<size_t>(n->number_value), config_.max_top_n);
  }
  double deadline_ms = config_.default_deadline_ms;
  if (const JsonValue* d = doc.Find("deadline_ms")) {
    if (!d->is_number() || d->number_value <= 0.0) {
      reject("\"deadline_ms\" must be a positive number");
      return;
    }
    deadline_ms = std::min(d->number_value, config_.max_deadline_ms);
  }
  if (deadline_ms > 0.0) {
    batch_request.has_deadline = true;
    batch_request.deadline =
        CancelToken::Clock::now() +
        std::chrono::duration_cast<CancelToken::Clock::duration>(
            std::chrono::duration<double, std::milli>(deadline_ms));
  }

  // Completion runs on the batcher's dispatch thread; the responder
  // routes the rendered response back to the event loop. A copy stays
  // behind for the shed path (Submit never invokes `done` on failure).
  HttpServer::Responder respond_on_shed = respond;
  LabelFn label = label_;
  auto done = [this, respond = std::move(respond), label = std::move(label),
               started, trace_id, trace_key, head, t0_ns,
               query_text = batch_request.query,
               top_n = batch_request.top_n](BatchResponse result) {
    const double e2e_ms = started->ElapsedMillis();
    const bool slow = IsSlow(e2e_ms, result);
    obs::Tracer& tracer = obs::Tracer::Global();

    bool kept = false;
    if (trace_key != 0) {
      // The server/queue/batch phases are measured by timers (the queue
      // wait has no thread to scope a span on), so they are recorded
      // manually; together with the engine-phase spans they form the
      // server -> queue -> batch -> encode/search/ranking tree.
      const uint64_t e2e_ns = MsToNs(e2e_ms);
      const uint64_t queue_ns =
          std::min(MsToNs(result.queue_wait_ms), e2e_ns);
      obs::RecordSpan(trace_key, "server.request", t0_ns, e2e_ns);
      obs::RecordSpan(trace_key, "serve.queue", t0_ns, queue_ns);
      obs::RecordSpan(trace_key, "serve.batch", t0_ns + queue_ns,
                      e2e_ns - queue_ns);
      kept = head || slow || tracer.mode() == obs::TraceMode::kAlwaysOn;
      tracer.EndTrace(trace_key, slow);
      if (kept) KPEF_COUNTER_ADD(obs::kServeTracesRetained, 1);
    }

    const double search_ms =
        std::max(0.0, result.stats.retrieval_ms - result.stats.encode_ms);
    if (slow) {
      KPEF_COUNTER_ADD(obs::kServeSlowQueries, 1);
      obs::SlowQueryRecord srec;
      srec.trace_id = trace_id;
      srec.query = query_text;
      srec.status = result.deadline_exceeded ? 504 : 200;
      srec.e2e_ms = e2e_ms;
      srec.queue_wait_ms = result.queue_wait_ms;
      srec.encode_ms = result.stats.encode_ms;
      srec.search_ms = search_ms;
      srec.ranking_ms = result.stats.ranking_ms;
      srec.batch_size = result.batch_size;
      srec.deadline_exceeded = result.deadline_exceeded;
      slow_ring_.Push(std::move(srec));
    }

    // Log before responding so a client that saw the response can rely
    // on the line existing.
    obs::RequestLogRecord record;
    record.trace_id = trace_id;
    record.status = result.deadline_exceeded ? 504 : 200;
    record.top_n = top_n;
    record.batch_size = result.batch_size;
    record.e2e_ms = e2e_ms;
    record.queue_wait_ms = result.queue_wait_ms;
    record.encode_ms = result.stats.encode_ms;
    record.search_ms = search_ms;
    record.ranking_ms = result.stats.ranking_ms;
    record.deadline_exceeded = result.deadline_exceeded;
    record.sampled = head;
    record.trace_kept = kept;
    WriteAccessLog(record);

    HttpResponse response;
    response.status = result.deadline_exceeded ? 504 : 200;
    response.extra_headers.emplace_back("x-request-id", trace_id);
    std::string& body = response.body;
    body.push_back('{');
    if (result.deadline_exceeded) {
      body.append("\"error\":\"deadline exceeded\",\"partial\":true,");
    }
    body.append("\"experts\":[");
    for (size_t i = 0; i < result.experts.size(); ++i) {
      if (i > 0) body.push_back(',');
      body.append("{\"id\":");
      body.append(std::to_string(result.experts[i].author));
      body.append(",\"name\":");
      AppendJsonString(label ? label(result.experts[i].author) : "",
                       &body);
      body.append(",\"score\":");
      body.append(JsonNumber(result.experts[i].score));
      body.push_back('}');
    }
    body.append("],\"stats\":{\"retrieval_ms\":");
    body.append(JsonNumber(result.stats.retrieval_ms));
    body.append(",\"encode_ms\":");
    body.append(JsonNumber(result.stats.encode_ms));
    body.append(",\"ranking_ms\":");
    body.append(JsonNumber(result.stats.ranking_ms));
    body.append(",\"distance_computations\":");
    body.append(std::to_string(result.stats.distance_computations));
    body.append(",\"ranking_entries_accessed\":");
    body.append(std::to_string(result.stats.ranking_entries_accessed));
    body.append(",\"ta_early_terminated\":");
    body.append(result.stats.ta_early_terminated ? "true" : "false");
    body.append(",\"deadline_exceeded\":");
    body.append(result.deadline_exceeded ? "true" : "false");
    body.append("},\"batch_size\":");
    body.append(std::to_string(result.batch_size));
    body.append(",\"queue_wait_ms\":");
    body.append(JsonNumber(result.queue_wait_ms));
    body.append(",\"trace_id\":");
    AppendJsonString(trace_id, &body);
    body.append("}\n");
    KPEF_HISTOGRAM_OBSERVE(obs::kServeE2eMs, e2e_ms);
    respond(std::move(response));
  };

  if (!batcher_.Submit(std::move(batch_request), std::move(done))) {
    // Shed (or draining): tell the client when to come back.
    tracer.EndTrace(trace_key, false);
    obs::RequestLogRecord record;
    record.trace_id = trace_id;
    record.status = 429;
    record.e2e_ms = started->ElapsedMillis();
    record.shed = true;
    record.sampled = head;
    WriteAccessLog(record);
    HttpResponse response = JsonError(429, "server overloaded, retry later");
    response.extra_headers.emplace_back(
        "retry-after", std::to_string(config_.retry_after_seconds));
    response.extra_headers.emplace_back("x-request-id", trace_id);
    respond_on_shed(std::move(response));
  }
}

void ExpertSearchService::HandleReload(const HttpRequest& request,
                                       HttpServer::Responder respond) {
  if (!hooks_.reload) {
    respond(JsonError(503, "reload not supported by this deployment"));
    return;
  }
  std::string dir = config_.reload_dir;
  if (!request.body.empty()) {
    JsonValue doc;
    std::string parse_error;
    if (!ParseJson(request.body, &doc, &parse_error) || !doc.is_object()) {
      KPEF_COUNTER_ADD(obs::kServeBadRequests, 1);
      respond(JsonError(400, parse_error.empty()
                                 ? "body must be a JSON object"
                                 : parse_error));
      return;
    }
    if (const JsonValue* d = doc.Find("dir")) {
      if (!d->is_string() || d->string_value.empty()) {
        KPEF_COUNTER_ADD(obs::kServeBadRequests, 1);
        respond(JsonError(400, "\"dir\" must be a non-empty string"));
        return;
      }
      dir = d->string_value;
    }
  }
  if (reload_in_flight_.exchange(true)) {
    respond(JsonError(409, "a reload is already in progress"));
    return;
  }
  // The previous loader thread (if any) has finished — the in-flight
  // flag was false — so reaping it here cannot block the event loop.
  if (reload_thread_.joinable()) reload_thread_.join();
  // The load itself (artifact IO + per-shard index builds) runs off the
  // event loop; the Responder is thread-safe and routes the response
  // back through the loop's eventfd.
  auto reload = hooks_.reload;
  reload_thread_ = std::thread([this, reload = std::move(reload),
                                dir = std::move(dir),
                                respond = std::move(respond)]() mutable {
    Timer timer;
    StatusOr<uint64_t> swapped = reload(dir);
    if (swapped.ok()) {
      KPEF_COUNTER_ADD(obs::kServeReloads, 1);
      HttpResponse response;
      response.body.append("{\"generation\":");
      response.body.append(std::to_string(*swapped));
      response.body.append(",\"load_seconds\":");
      response.body.append(JsonNumber(timer.ElapsedSeconds()));
      response.body.append("}\n");
      // Release the gate before responding so a client that saw the 200
      // can trigger the next reload without bouncing off a stale flag.
      reload_in_flight_.store(false);
      respond(std::move(response));
    } else {
      KPEF_COUNTER_ADD(obs::kServeReloadFailures, 1);
      reload_in_flight_.store(false);
      respond(JsonError(500, swapped.status().ToString()));
    }
  });
}

void ExpertSearchService::HandleIngest(const HttpRequest& request,
                                       HttpServer::Responder respond) {
  if (!hooks_.ingest) {
    respond(JsonError(503, "ingest not enabled (start with --wal)"));
    return;
  }
  JsonValue doc;
  std::string parse_error;
  if (!ParseJson(request.body, &doc, &parse_error)) {
    KPEF_COUNTER_ADD(obs::kServeBadRequests, 1);
    respond(JsonError(400, parse_error));
    return;
  }
  StatusOr<IngestBatch> batch = IngestBatchFromJson(doc);
  if (!batch.ok()) {
    KPEF_COUNTER_ADD(obs::kServeBadRequests, 1);
    KPEF_COUNTER_ADD(obs::kIngestRejected, 1);
    respond(JsonError(400, batch.status().ToString()));
    return;
  }
  if (ingest_in_flight_.exchange(true)) {
    respond(JsonError(409, "an ingest is already in progress"));
    return;
  }
  // Same thread discipline as HandleReload: the previous worker has
  // finished (the flag was false), so the join cannot block the loop,
  // and the apply (WAL fsync + index insertion + engine assembly) runs
  // off the event loop.
  if (ingest_thread_.joinable()) ingest_thread_.join();
  auto ingest = hooks_.ingest;
  ingest_thread_ = std::thread([this, ingest = std::move(ingest),
                                batch = std::move(batch).value(),
                                respond = std::move(respond)]() mutable {
    StatusOr<IngestApplyResult> applied = ingest(batch);
    if (applied.ok()) {
      HttpResponse response;
      response.body.append("{\"applied\":");
      response.body.append(std::to_string(applied->applied));
      response.body.append(",\"duplicates\":");
      response.body.append(std::to_string(applied->duplicates));
      response.body.append(",\"generation\":");
      response.body.append(std::to_string(applied->generation));
      response.body.append(",\"merged\":");
      response.body.append(applied->merged ? "true" : "false");
      if (hooks_.ingest_stats) {
        response.body.append(",\"pending_delta_edges\":");
        response.body.append(
            std::to_string(hooks_.ingest_stats().pending_delta_edges));
      }
      response.body.append("}\n");
      // Release the gate before responding: a client that has its 200
      // may post the next batch immediately (the steady-state ingest
      // pattern) and must not bounce off a stale in-flight flag.
      ingest_in_flight_.store(false);
      respond(std::move(response));
    } else {
      KPEF_COUNTER_ADD(obs::kIngestRejected, 1);
      ingest_in_flight_.store(false);
      respond(JsonError(500, applied.status().ToString()));
    }
  });
}

void ExpertSearchService::HandleDebugSlow(HttpServer::Responder respond) {
  const std::vector<obs::SlowQueryRecord> records =
      slow_ring_.SnapshotNewestFirst();
  HttpResponse response;
  std::string& body = response.body;
  body.append("{\"total_recorded\":");
  body.append(std::to_string(slow_ring_.TotalPushed()));
  body.append(",\"slow\":[");
  for (size_t i = 0; i < records.size(); ++i) {
    const obs::SlowQueryRecord& r = records[i];
    if (i > 0) body.push_back(',');
    body.append("{\"trace_id\":");
    AppendJsonString(r.trace_id, &body);
    body.append(",\"query\":");
    AppendJsonString(r.query, &body);
    body.append(",\"status\":");
    body.append(std::to_string(r.status));
    body.append(",\"e2e_ms\":");
    body.append(JsonNumber(r.e2e_ms));
    body.append(",\"queue_wait_ms\":");
    body.append(JsonNumber(r.queue_wait_ms));
    body.append(",\"encode_ms\":");
    body.append(JsonNumber(r.encode_ms));
    body.append(",\"search_ms\":");
    body.append(JsonNumber(r.search_ms));
    body.append(",\"ranking_ms\":");
    body.append(JsonNumber(r.ranking_ms));
    body.append(",\"batch_size\":");
    body.append(std::to_string(r.batch_size));
    body.append(",\"deadline_exceeded\":");
    body.append(r.deadline_exceeded ? "true" : "false");
    body.push_back('}');
  }
  body.append("]}\n");
  respond(std::move(response));
}

void ExpertSearchService::HandleDebugTrace(const HttpRequest& request,
                                           HttpServer::Responder respond) {
  const std::string_view id = QueryParam(request.target, "id");
  if (id.empty()) {
    respond(JsonError(400, "missing id parameter"));
    return;
  }
  obs::TraceSnapshot snapshot;
  if (!obs::Tracer::Global().FindRetained(id, &snapshot)) {
    respond(JsonError(
        404, "trace not retained (sampled out, expired, or unknown id)"));
    return;
  }
  HttpResponse response;
  if (QueryParam(request.target, "format") == "chrome") {
    response.body = obs::ExportChromeTrace(snapshot);
  } else {
    response.body = obs::ExportTraceJson(snapshot);
  }
  response.body.push_back('\n');
  respond(std::move(response));
}

}  // namespace kpef::serve

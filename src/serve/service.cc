#include "serve/service.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/timer.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/pipeline_metrics.h"
#include "serve/json_util.h"

namespace kpef::serve {

namespace {

HttpResponse JsonError(int status, std::string_view message) {
  HttpResponse response;
  response.status = status;
  response.body.append("{\"error\":");
  AppendJsonString(message, &response.body);
  response.body.append("}\n");
  return response;
}

}  // namespace

ExpertSearchService::ExpertSearchService(ServiceConfig config, EngineInfo info,
                                         BatchExecuteFn execute, LabelFn label)
    : config_(config),
      info_(std::move(info)),
      label_(std::move(label)),
      batcher_(config.batcher, std::move(execute)) {}

std::unique_ptr<ExpertSearchService> ExpertSearchService::ForEngine(
    ExpertFindingEngine* engine, ServiceConfig config) {
  BatchExecuteFn execute = [engine](const std::vector<std::string>& texts,
                                    size_t top_n,
                                    const BatchQueryOptions& options,
                                    std::vector<QueryStats>* stats) {
    return engine->FindExpertsBatch(texts, top_n, options, stats);
  };
  const HeteroGraph* graph = &engine->dataset().graph;
  LabelFn label = [graph](NodeId id) { return graph->Label(id); };
  return std::make_unique<ExpertSearchService>(
      config, engine->Info(), std::move(execute), std::move(label));
}

void ExpertSearchService::Handle(const HttpRequest& request,
                                 HttpServer::Responder respond) {
  KPEF_COUNTER_ADD(obs::kServeRequests, 1);
  const std::string_view path = request.Path();

  if (path == "/healthz") {
    if (request.method != "GET") {
      respond(JsonError(405, "use GET"));
      return;
    }
    HttpResponse response;
    response.body.append("{\"status\":\"ok\",\"engine\":");
    AppendJsonString(info_.display_name, &response.body);
    response.body.append(",\"papers\":");
    response.body.append(std::to_string(info_.num_papers));
    response.body.append(",\"experts\":");
    response.body.append(std::to_string(info_.num_experts));
    response.body.append(",\"dim\":");
    response.body.append(std::to_string(info_.embedding_dim));
    response.body.append(",\"pg_index\":");
    response.body.append(info_.has_index ? "true" : "false");
    response.body.append(",\"draining\":false}\n");
    respond(std::move(response));
    return;
  }

  if (path == "/metrics") {
    if (request.method != "GET") {
      respond(JsonError(405, "use GET"));
      return;
    }
    HttpResponse response;
    response.content_type = "text/plain; version=0.0.4";
    response.body = obs::ExportPrometheusText();
    respond(std::move(response));
    return;
  }

  if (path == "/v1/find_experts") {
    if (request.method != "POST") {
      respond(JsonError(405, "use POST"));
      return;
    }
    HandleFindExperts(request, std::move(respond));
    return;
  }

  respond(JsonError(404, "unknown endpoint"));
}

void ExpertSearchService::HandleFindExperts(const HttpRequest& request,
                                            HttpServer::Responder respond) {
  JsonValue doc;
  std::string parse_error;
  if (!ParseJson(request.body, &doc, &parse_error) || !doc.is_object()) {
    KPEF_COUNTER_ADD(obs::kServeBadRequests, 1);
    respond(JsonError(400, parse_error.empty() ? "body must be a JSON object"
                                               : parse_error));
    return;
  }
  const JsonValue* query = doc.Find("query");
  if (query == nullptr || !query->is_string() ||
      query->string_value.empty()) {
    KPEF_COUNTER_ADD(obs::kServeBadRequests, 1);
    respond(JsonError(400, "\"query\" must be a non-empty string"));
    return;
  }

  BatchRequest batch_request;
  batch_request.query = query->string_value;
  batch_request.top_n = config_.default_top_n;
  if (const JsonValue* n = doc.Find("n")) {
    if (!n->is_number() || n->number_value < 1.0 ||
        n->number_value != std::floor(n->number_value)) {
      KPEF_COUNTER_ADD(obs::kServeBadRequests, 1);
      respond(JsonError(400, "\"n\" must be a positive integer"));
      return;
    }
    batch_request.top_n = std::min<size_t>(
        static_cast<size_t>(n->number_value), config_.max_top_n);
  }
  double deadline_ms = config_.default_deadline_ms;
  if (const JsonValue* d = doc.Find("deadline_ms")) {
    if (!d->is_number() || d->number_value <= 0.0) {
      KPEF_COUNTER_ADD(obs::kServeBadRequests, 1);
      respond(JsonError(400, "\"deadline_ms\" must be a positive number"));
      return;
    }
    deadline_ms = std::min(d->number_value, config_.max_deadline_ms);
  }
  if (deadline_ms > 0.0) {
    batch_request.has_deadline = true;
    batch_request.deadline =
        CancelToken::Clock::now() +
        std::chrono::duration_cast<CancelToken::Clock::duration>(
            std::chrono::duration<double, std::milli>(deadline_ms));
  }

  // Completion runs on the batcher's dispatch thread; the responder
  // routes the rendered response back to the event loop. A copy stays
  // behind for the shed path (Submit never invokes `done` on failure).
  HttpServer::Responder respond_on_shed = respond;
  auto started = std::make_shared<Timer>();
  LabelFn label = label_;
  auto done = [respond = std::move(respond), label = std::move(label),
               started](BatchResponse result) {
    HttpResponse response;
    response.status = result.deadline_exceeded ? 504 : 200;
    std::string& body = response.body;
    body.push_back('{');
    if (result.deadline_exceeded) {
      body.append("\"error\":\"deadline exceeded\",\"partial\":true,");
    }
    body.append("\"experts\":[");
    for (size_t i = 0; i < result.experts.size(); ++i) {
      if (i > 0) body.push_back(',');
      body.append("{\"id\":");
      body.append(std::to_string(result.experts[i].author));
      body.append(",\"name\":");
      AppendJsonString(label ? label(result.experts[i].author) : "",
                       &body);
      body.append(",\"score\":");
      body.append(JsonNumber(result.experts[i].score));
      body.push_back('}');
    }
    body.append("],\"stats\":{\"retrieval_ms\":");
    body.append(JsonNumber(result.stats.retrieval_ms));
    body.append(",\"ranking_ms\":");
    body.append(JsonNumber(result.stats.ranking_ms));
    body.append(",\"distance_computations\":");
    body.append(std::to_string(result.stats.distance_computations));
    body.append(",\"ranking_entries_accessed\":");
    body.append(std::to_string(result.stats.ranking_entries_accessed));
    body.append(",\"ta_early_terminated\":");
    body.append(result.stats.ta_early_terminated ? "true" : "false");
    body.append(",\"deadline_exceeded\":");
    body.append(result.deadline_exceeded ? "true" : "false");
    body.append("},\"batch_size\":");
    body.append(std::to_string(result.batch_size));
    body.append(",\"queue_wait_ms\":");
    body.append(JsonNumber(result.queue_wait_ms));
    body.append("}\n");
    KPEF_HISTOGRAM_OBSERVE(obs::kServeE2eMs, started->ElapsedMillis());
    respond(std::move(response));
  };

  if (!batcher_.Submit(std::move(batch_request), std::move(done))) {
    // Shed (or draining): tell the client when to come back.
    HttpResponse response = JsonError(429, "server overloaded, retry later");
    response.extra_headers.emplace_back(
        "retry-after", std::to_string(config_.retry_after_seconds));
    respond_on_shed(std::move(response));
  }
}

}  // namespace kpef::serve

// ExpertSearchService: HTTP endpoint contracts over the engine
// (DESIGN.md §11).
//
//   POST /v1/find_experts   {"query": "...", "n": 10, "deadline_ms": 50}
//     200 {"experts":[{"id":..,"name":"..","score":..},...],
//          "stats":{...}, "batch_size":.., "queue_wait_ms":..}
//     400 malformed HTTP/JSON (incl. non-UTF-8 bodies)
//     429 admission queue full (Retry-After header)
//     504 per-request deadline missed ("partial": true, any results the
//         engine finished before the deadline are included)
//   GET /healthz             200 {"status":"ok", ...engine summary}
//   GET /metrics             200 Prometheus text exposition
//
// The service talks to the engine exclusively through a BatchExecuteFn,
// so tests wire a fake engine; ForEngine() adapts a real
// ExpertFindingEngine.

#ifndef KPEF_SERVE_SERVICE_H_
#define KPEF_SERVE_SERVICE_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <string>

#include "core/engine.h"
#include "serve/batcher.h"
#include "serve/http_server.h"

namespace kpef::serve {

struct ServiceConfig {
  BatcherConfig batcher;
  /// "n" when the request omits it, and its hard cap.
  size_t default_top_n = 10;
  size_t max_top_n = 200;
  /// Deadline applied when the request omits deadline_ms (<= 0: none).
  double default_deadline_ms = 0.0;
  /// Requested deadlines are clamped to this.
  double max_deadline_ms = 60000.0;
  /// Retry-After value on 429 responses, seconds.
  int retry_after_seconds = 1;
};

class ExpertSearchService {
 public:
  /// Maps an expert NodeId to a display label for response rendering.
  using LabelFn = std::function<std::string(NodeId)>;

  ExpertSearchService(ServiceConfig config, EngineInfo info,
                      BatchExecuteFn execute, LabelFn label);

  /// Wires a real engine: execute = engine->FindExpertsBatch, labels
  /// from the dataset graph. The engine must outlive the service.
  static std::unique_ptr<ExpertSearchService> ForEngine(
      ExpertFindingEngine* engine, ServiceConfig config);

  /// HttpServer::Handler entry point.
  void Handle(const HttpRequest& request, HttpServer::Responder respond);

  /// Stops admission and flushes queued queries (callbacks still fire).
  /// Call before the HTTP server's graceful drain completes so in-flight
  /// requests get real responses.
  void Drain() { batcher_.Shutdown(); }

  const ServiceConfig& config() const { return config_; }

 private:
  void HandleFindExperts(const HttpRequest& request,
                         HttpServer::Responder respond);

  const ServiceConfig config_;
  const EngineInfo info_;
  const LabelFn label_;
  MicroBatcher batcher_;
};

}  // namespace kpef::serve

#endif  // KPEF_SERVE_SERVICE_H_

// ExpertSearchService: HTTP endpoint contracts over the engine
// (DESIGN.md §11, observability in §12).
//
//   POST /v1/find_experts   {"query": "...", "n": 10, "deadline_ms": 50}
//     200 {"experts":[{"id":..,"name":"..","score":..},...],
//          "stats":{...}, "batch_size":.., "queue_wait_ms":..,
//          "trace_id":".."}
//     400 malformed HTTP/JSON (incl. non-UTF-8 bodies)
//     429 admission queue full (Retry-After header)
//     504 per-request deadline missed ("partial": true, any results the
//         engine finished before the deadline are included)
//     Every response echoes the request's trace id in an x-request-id
//     header (client-supplied X-Request-Id is sanitized; otherwise one
//     is generated).
//   GET /healthz             200 {"status":"ok", ...engine summary,
//                                 "git":"..","build":".."}
//   GET /metrics             200 Prometheus text exposition (process
//                                self-metrics sampled on each scrape)
//   GET /v1/debug/slow       200 recent slow queries, newest first
//   GET /v1/debug/trace?id=X 200 retained span tree for trace id X
//                                (&format=chrome for trace-event JSON);
//                                404 when not retained
//   POST /v1/admin/ingest    {"papers":[{"text":"..","authors":[".."],
//                             "venue":"..","topics":[".."],
//                             "cites":[".."]},...]}
//     200 {"applied":N,"duplicates":D,"generation":G,"merged":bool,
//          "pending_delta_edges":P} after the batch is WAL-durable,
//         folded into the staging state, and published as a new
//         generation; queries in flight keep draining on the old one
//     400 malformed JSON or batch shape
//     409 another ingest is already in progress
//     503 service running without an ingest coordinator (--wal unset)
//   POST /v1/admin/reload    {"dir":"path"} (body optional; falls back
//                            to ServiceConfig::reload_dir, then the
//                            serving directory)
//     200 {"generation":N,"load_seconds":S} after the new generation is
//         published; in-flight queries drain on the old one
//     409 another reload is already in progress
//     500 load failed (old generation keeps serving)
//     503 service built without a reload hook
//
// The service talks to the engine exclusively through a BatchExecuteFn,
// so tests wire a fake engine; ForEngine() adapts a real
// ExpertFindingEngine.

#ifndef KPEF_SERVE_SERVICE_H_
#define KPEF_SERVE_SERVICE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "core/engine.h"
#include "core/engine_group.h"
#include "ingest/coordinator.h"
#include "obs/request_log.h"
#include "obs/slow_query_ring.h"
#include "obs/trace.h"
#include "serve/batcher.h"
#include "serve/http_server.h"

namespace kpef::serve {

struct ServiceConfig {
  BatcherConfig batcher;
  /// "n" when the request omits it, and its hard cap.
  size_t default_top_n = 10;
  size_t max_top_n = 200;
  /// Deadline applied when the request omits deadline_ms (<= 0: none).
  double default_deadline_ms = 0.0;
  /// Requested deadlines are clamped to this.
  double max_deadline_ms = 60000.0;
  /// Retry-After value on 429 responses, seconds.
  int retry_after_seconds = 1;

  // --- Request-scoped tracing (DESIGN.md §12).
  /// Installed on the global tracer at construction. kSampled records
  /// every request and retains heads + tails; kAlwaysOn retains all.
  obs::TraceMode trace_mode = obs::TraceMode::kSampled;
  /// Head sampling: every Nth find_experts request is retained
  /// unconditionally (1 = all, 0 = heads off; tail rules still apply).
  uint32_t trace_head_every = 64;
  /// Tail-based keep + slow-query-ring thresholds: a request whose e2e
  /// latency or queue wait crosses these (or that missed its deadline)
  /// has its trace retained and lands in /v1/debug/slow.
  double slow_e2e_ms = 100.0;
  double slow_queue_wait_ms = 50.0;
  /// Slow-query ring capacity.
  size_t slow_ring_capacity = 128;

  // --- Structured access log (JSON lines).
  /// "" = disabled, "-" = stdout, otherwise a file appended to.
  std::string access_log_path;
  /// Test seam: when set, lines go here instead of access_log_path.
  obs::RequestLog::Sink access_log_sink;

  /// Artifact directory /v1/admin/reload falls back to when the request
  /// body names none ("" = reload whatever directory is serving now).
  std::string reload_dir;
};

/// Optional live hooks behind the service (EngineGroup wiring). All may
/// be null: info falls back to the static EngineInfo, reload answers
/// 503, sample is skipped.
struct ServiceHooks {
  /// Fresh serving summary per /healthz call (generation, shards, ...).
  std::function<EngineInfo()> info;
  /// Builds + publishes a new generation from the directory; returns
  /// the new generation id. Runs on a background thread — must be
  /// thread-safe against concurrent queries.
  std::function<StatusOr<uint64_t>(const std::string& dir)> reload;
  /// Called on each /metrics scrape before export (generation gauges).
  std::function<void()> sample;
  /// Applies one streaming-ingest batch (WAL append + staging apply +
  /// generation publish). Runs on a background thread — must be
  /// thread-safe against concurrent queries. Null => ingest answers 503.
  std::function<StatusOr<IngestApplyResult>(const IngestBatch& batch)> ingest;
  /// Fresh ingest state for /healthz (WAL position, pending deltas).
  std::function<IngestStats()> ingest_stats;
};

class ExpertSearchService {
 public:
  /// Maps an expert NodeId to a display label for response rendering.
  using LabelFn = std::function<std::string(NodeId)>;

  ExpertSearchService(ServiceConfig config, EngineInfo info,
                      BatchExecuteFn execute, LabelFn label,
                      ServiceHooks hooks = {});
  ~ExpertSearchService();

  /// Wires a real engine: execute = engine->FindExpertsBatch, labels
  /// from the dataset graph. The engine must outlive the service.
  static std::unique_ptr<ExpertSearchService> ForEngine(
      ExpertFindingEngine* engine, ServiceConfig config);

  /// Wires an EngineGroup: queries go to the current generation,
  /// /healthz reads live generation info, POST /v1/admin/reload
  /// hot-swaps artifacts, and /metrics samples the generation gauges.
  /// The group must outlive the service.
  /// `ingest` (optional) additionally enables POST /v1/admin/ingest and
  /// the /healthz ingest fields; it must outlive the service.
  static std::unique_ptr<ExpertSearchService> ForEngineGroup(
      EngineGroup* group, ServiceConfig config,
      IngestCoordinator* ingest = nullptr);

  /// HttpServer::Handler entry point.
  void Handle(const HttpRequest& request, HttpServer::Responder respond);

  /// Stops admission and flushes queued queries (callbacks still fire),
  /// and joins any in-flight reload. Call before the HTTP server's
  /// graceful drain completes so in-flight requests get real responses.
  void Drain();

  const ServiceConfig& config() const { return config_; }
  const obs::SlowQueryRing& slow_ring() const { return slow_ring_; }

 private:
  void HandleFindExperts(const HttpRequest& request,
                         HttpServer::Responder respond);
  void HandleReload(const HttpRequest& request,
                    HttpServer::Responder respond);
  void HandleIngest(const HttpRequest& request,
                    HttpServer::Responder respond);
  void HandleDebugSlow(HttpServer::Responder respond);
  void HandleDebugTrace(const HttpRequest& request,
                        HttpServer::Responder respond);

  /// Sanitized client X-Request-Id, or a generated id when absent/empty
  /// after sanitization.
  std::string RequestIdFor(const HttpRequest& request);

  /// Tail rule: did this completed request cross a slow threshold?
  bool IsSlow(double e2e_ms, const BatchResponse& result) const;

  void WriteAccessLog(const obs::RequestLogRecord& record);

  const ServiceConfig config_;
  const EngineInfo info_;
  const LabelFn label_;
  const ServiceHooks hooks_;
  std::unique_ptr<obs::RequestLog> access_log_;
  obs::SlowQueryRing slow_ring_;
  /// find_experts sequence number, drives head sampling and id
  /// generation.
  std::atomic<uint64_t> request_seq_{0};
  /// At most one artifact reload runs at a time (extra requests 409).
  std::atomic<bool> reload_in_flight_{false};
  /// The loader thread of the current/last reload. Started and reaped
  /// on the event-loop thread (Handle), joined finally by Drain().
  std::thread reload_thread_;
  /// Same single-flight pattern for streaming ingest: one batch applies
  /// at a time (the coordinator serializes anyway; the gate keeps the
  /// event loop from stacking up worker threads).
  std::atomic<bool> ingest_in_flight_{false};
  std::thread ingest_thread_;
  MicroBatcher batcher_;
};

}  // namespace kpef::serve

#endif  // KPEF_SERVE_SERVICE_H_

// Incremental HTTP/1.1 request parser for the serving subsystem.
//
// Deliberately minimal (DESIGN.md §11): no chunked transfer encoding, no
// multiline header folding, no trailers. Every limit is enforced while
// bytes arrive, so a hostile peer can neither balloon memory (huge
// Content-Length, endless headers) nor wedge a connection (truncated
// input just stays kNeedMore until the caller times it out or the peer
// closes). All malformed input degrades to kError with an HTTP status
// the server echoes back — the parser itself never throws.

#ifndef KPEF_SERVE_HTTP_PARSER_H_
#define KPEF_SERVE_HTTP_PARSER_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace kpef::serve {

/// One parsed request. Header names are lowercased at parse time; values
/// keep their original bytes with surrounding whitespace trimmed.
struct HttpRequest {
  std::string method;
  std::string target;  // origin-form, e.g. "/v1/find_experts?verbose=1"
  int version_minor = 1;  // HTTP/1.<minor>; only 0 and 1 are accepted
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  /// Connection semantics after this request (Connection header applied
  /// to the version default: 1.1 keeps alive, 1.0 closes).
  bool keep_alive = true;

  /// Case-insensitive lookup (`name` must be given lowercased).
  const std::string* FindHeader(std::string_view name) const;
  /// Path without the query string.
  std::string_view Path() const;
};

/// Value of `name` in `target`'s query string ("" when absent or empty).
/// No percent-decoding: the debug endpoints that use this restrict their
/// ids to URL-safe bytes, so encoded ids simply fail to match.
std::string_view QueryParam(std::string_view target, std::string_view name);

struct HttpParserLimits {
  /// Request line + headers, including terminators.
  size_t max_header_bytes = 8 * 1024;
  /// Declared Content-Length above this is rejected before any body
  /// byte is buffered.
  size_t max_body_bytes = 1 << 20;
};

/// Push parser: call Feed() with whatever the socket produced; the
/// parser buffers across calls, so split reads of any granularity work.
/// After kComplete, ConsumeRequest() releases the request's bytes and
/// re-parses any leftover input (pipelined requests complete without
/// further Feed() calls).
class HttpRequestParser {
 public:
  enum class State { kNeedMore, kComplete, kError };

  explicit HttpRequestParser(HttpParserLimits limits = HttpParserLimits());

  State Feed(const char* data, size_t len);
  State Feed(std::string_view data) { return Feed(data.data(), data.size()); }

  State state() const { return state_; }
  /// Valid only in kComplete.
  const HttpRequest& request() const { return request_; }
  /// Valid only in kError: the status the server should answer with
  /// (always 4xx) and a short human-readable reason.
  int error_status() const { return error_status_; }
  const std::string& error_reason() const { return error_reason_; }

  /// Discards the completed request and parses buffered leftover bytes.
  /// Returns the parser state for the *next* request.
  State ConsumeRequest();

  /// Bytes buffered but not yet part of a completed request.
  size_t BufferedBytes() const { return buffer_.size(); }

 private:
  State Fail(int status, std::string reason);
  /// Attempts to advance using buffer_; sets state_.
  void TryParse();

  HttpParserLimits limits_;
  std::string buffer_;
  State state_ = State::kNeedMore;
  HttpRequest request_;
  /// Set once the header block is parsed; body_needed_ counts down.
  bool headers_done_ = false;
  size_t body_needed_ = 0;
  int error_status_ = 0;
  std::string error_reason_;
};

}  // namespace kpef::serve

#endif  // KPEF_SERVE_HTTP_PARSER_H_

// Dynamic micro-batching scheduler: coalesces concurrent find_experts
// requests into one FindExpertsBatch call (DESIGN.md §11).
//
// Requests enter a bounded queue; a dedicated dispatch thread flushes a
// batch when either (a) max_batch_size requests are pending or (b) the
// oldest pending request has waited max_queue_age_ms. Admission control
// is synchronous: Submit() fails immediately when the queue is full, so
// the caller can shed load (HTTP 429) without ever blocking the event
// loop. Per-request deadlines propagate into the engine call per slot
// (BatchQueryOptions::deadlines), so the engine stops spending time on a
// query the moment its own budget expires; requests that miss their
// deadline come back flagged (HTTP 504) instead of wedging the batch.
//
// The batcher is a pure unit: it executes batches through an injected
// function, so tests drive it with a fake engine and no sockets.

#ifndef KPEF_SERVE_BATCHER_H_
#define KPEF_SERVE_BATCHER_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/cancellation.h"
#include "core/engine.h"
#include "ranking/expert_score.h"

namespace kpef::serve {

struct BatcherConfig {
  /// Flush as soon as this many requests are pending.
  size_t max_batch_size = 16;
  /// Flush once the oldest pending request is this old, even if the
  /// batch is smaller (bounds queueing latency under light load).
  double max_queue_age_ms = 4.0;
  /// Admission bound: Submit() sheds once this many requests are queued
  /// (requests already dispatched to the engine do not count).
  size_t max_pending = 256;
  /// Hard cap on any request's top_n (0 = uncapped). The engine runs a
  /// coalesced batch at the max n over its requests, so without a cap
  /// one n=1000 request inflates TA work for every rider; clamped
  /// requests are counted in serve.top_n_clamped and answered with
  /// max_top_n results.
  size_t max_top_n = 400;
  /// Pool forwarded to BatchQueryOptions (nullptr = engine default).
  ThreadPool* pool = nullptr;
};

/// One enqueued query.
struct BatchRequest {
  std::string query;
  size_t top_n = 10;
  /// Absolute per-request deadline; meaningful when has_deadline.
  CancelToken::Clock::time_point deadline{};
  bool has_deadline = false;
  /// Request-trace key (obs::Tracer::BeginTrace; 0 = untraced). Forwarded
  /// into BatchQueryOptions::trace_keys so engine-phase spans land in
  /// this request's trace.
  uint64_t trace_key = 0;
};

/// Delivered to the completion callback, on the dispatch thread.
struct BatchResponse {
  std::vector<ExpertScore> experts;
  QueryStats stats;
  /// True when the request missed its deadline (results may be empty or
  /// partial — the partial flag for the HTTP 504 body).
  bool deadline_exceeded = false;
  /// Milliseconds the request sat queued before dispatch.
  double queue_wait_ms = 0.0;
  /// Size of the engine batch this request rode in (0 when the request
  /// expired before dispatch or the batcher shut down mid-drain).
  size_t batch_size = 0;
};

/// Signature of ExpertFindingEngine::FindExpertsBatch — injected so unit
/// tests substitute a fake engine.
using BatchExecuteFn = std::function<std::vector<std::vector<ExpertScore>>(
    const std::vector<std::string>& texts, size_t top_n,
    const BatchQueryOptions& options, std::vector<QueryStats>* stats)>;

class MicroBatcher {
 public:
  using CompletionFn = std::function<void(BatchResponse)>;

  MicroBatcher(BatcherConfig config, BatchExecuteFn execute);
  /// Drains and joins (equivalent to Shutdown()).
  ~MicroBatcher();

  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  /// Enqueues a request; `done` is invoked exactly once, on the dispatch
  /// thread. Returns false (without invoking `done`) when the queue is
  /// full — the caller sheds the request. Returns false after Shutdown()
  /// began.
  bool Submit(BatchRequest request, CompletionFn done);

  /// Stops admission, flushes every queued request (their callbacks
  /// run), then joins the dispatch thread. Idempotent.
  void Shutdown();

  /// Requests queued but not yet dispatched (admission-control gauge).
  size_t PendingForTest() const;

 private:
  struct Pending {
    BatchRequest request;
    CompletionFn done;
    CancelToken::Clock::time_point enqueue_time;
  };

  void DispatchLoop();
  /// Pops up to max_batch_size requests and runs them as one engine
  /// call, invoking completions. Caller must NOT hold mutex_.
  void RunBatch(std::vector<Pending> batch);

  const BatcherConfig config_;
  const BatchExecuteFn execute_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool draining_ = false;
  /// Serializes Shutdown() callers around the thread join.
  std::mutex join_mutex_;
  std::thread dispatcher_;
};

}  // namespace kpef::serve

#endif  // KPEF_SERVE_BATCHER_H_

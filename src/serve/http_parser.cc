#include "serve/http_parser.h"

#include <algorithm>
#include <cctype>

namespace kpef::serve {

namespace {

bool IsTokenChar(char c) {
  // RFC 7230 token characters.
  if (std::isalnum(static_cast<unsigned char>(c))) return true;
  switch (c) {
    case '!': case '#': case '$': case '%': case '&': case '\'': case '*':
    case '+': case '-': case '.': case '^': case '_': case '`': case '|':
    case '~':
      return true;
    default:
      return false;
  }
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

/// Strict non-negative decimal parse; rejects signs, whitespace, and
/// anything that would overflow size_t (a hostile 10^30 Content-Length
/// must not wrap into a small allocation).
bool ParseContentLength(std::string_view s, size_t* out) {
  if (s.empty() || s.size() > 19) return false;
  size_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<size_t>(c - '0');
  }
  *out = value;
  return true;
}

}  // namespace

const std::string* HttpRequest::FindHeader(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return &value;
  }
  return nullptr;
}

std::string_view HttpRequest::Path() const {
  const std::string_view t(target);
  const size_t q = t.find('?');
  return q == std::string_view::npos ? t : t.substr(0, q);
}

std::string_view QueryParam(std::string_view target, std::string_view name) {
  const size_t qmark = target.find('?');
  if (qmark == std::string_view::npos) return {};
  std::string_view query = target.substr(qmark + 1);
  while (!query.empty()) {
    const size_t amp = query.find('&');
    const std::string_view pair =
        amp == std::string_view::npos ? query : query.substr(0, amp);
    query = amp == std::string_view::npos ? std::string_view()
                                          : query.substr(amp + 1);
    const size_t eq = pair.find('=');
    if (eq == std::string_view::npos) {
      if (pair == name) return {};
      continue;
    }
    if (pair.substr(0, eq) == name) return pair.substr(eq + 1);
  }
  return {};
}

HttpRequestParser::HttpRequestParser(HttpParserLimits limits)
    : limits_(limits) {}

HttpRequestParser::State HttpRequestParser::Fail(int status,
                                                 std::string reason) {
  state_ = State::kError;
  error_status_ = status;
  error_reason_ = std::move(reason);
  return state_;
}

HttpRequestParser::State HttpRequestParser::Feed(const char* data,
                                                 size_t len) {
  if (state_ == State::kError) return state_;
  if (state_ == State::kComplete) {
    // Pipelined bytes arriving before the caller consumed the current
    // request: buffer them, they are parsed by ConsumeRequest().
    buffer_.append(data, len);
    return state_;
  }
  buffer_.append(data, len);
  TryParse();
  return state_;
}

HttpRequestParser::State HttpRequestParser::ConsumeRequest() {
  if (state_ != State::kComplete) return state_;
  request_ = HttpRequest();
  headers_done_ = false;
  body_needed_ = 0;
  state_ = State::kNeedMore;
  TryParse();
  return state_;
}

void HttpRequestParser::TryParse() {
  if (!headers_done_) {
    // Locate the end of the header block; accept CRLF and bare LF line
    // endings (clients in the wild send both).
    size_t header_end = std::string::npos;  // index one past the blank line
    size_t body_start = 0;
    const size_t crlf = buffer_.find("\r\n\r\n");
    const size_t lf = buffer_.find("\n\n");
    if (crlf != std::string::npos && (lf == std::string::npos || crlf <= lf)) {
      header_end = crlf;
      body_start = crlf + 4;
    } else if (lf != std::string::npos) {
      header_end = lf;
      body_start = lf + 2;
    }
    if (header_end == std::string::npos) {
      if (buffer_.size() > limits_.max_header_bytes) {
        Fail(400, "header block exceeds limit");
      }
      return;  // kNeedMore: truncated headers just wait for more bytes.
    }
    if (body_start > limits_.max_header_bytes) {
      Fail(400, "header block exceeds limit");
      return;
    }

    // Split the header block into lines (tolerating either ending) and
    // parse request line + headers.
    std::string_view block(buffer_.data(), header_end);
    std::vector<std::string_view> lines;
    while (!block.empty()) {
      size_t eol = block.find('\n');
      std::string_view line =
          eol == std::string_view::npos ? block : block.substr(0, eol);
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      lines.push_back(line);
      if (eol == std::string_view::npos) break;
      block.remove_prefix(eol + 1);
    }
    if (lines.empty() || lines[0].empty()) {
      Fail(400, "empty request line");
      return;
    }

    // Request line: METHOD SP TARGET SP HTTP/1.x
    const std::string_view request_line = lines[0];
    const size_t sp1 = request_line.find(' ');
    const size_t sp2 =
        sp1 == std::string_view::npos ? sp1 : request_line.find(' ', sp1 + 1);
    if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
        request_line.find(' ', sp2 + 1) != std::string_view::npos) {
      Fail(400, "malformed request line");
      return;
    }
    const std::string_view method = request_line.substr(0, sp1);
    const std::string_view target =
        request_line.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::string_view version = request_line.substr(sp2 + 1);
    if (method.empty() ||
        !std::all_of(method.begin(), method.end(), IsTokenChar)) {
      Fail(400, "malformed method");
      return;
    }
    if (target.empty() || target[0] != '/' ||
        target.find_first_of(" \t") != std::string_view::npos) {
      Fail(400, "malformed request target");
      return;
    }
    if (version == "HTTP/1.1") {
      request_.version_minor = 1;
    } else if (version == "HTTP/1.0") {
      request_.version_minor = 0;
    } else {
      Fail(400, "unsupported HTTP version");
      return;
    }
    request_.method = std::string(method);
    request_.target = std::string(target);

    // Headers.
    size_t content_length = 0;
    bool have_content_length = false;
    for (size_t i = 1; i < lines.size(); ++i) {
      const std::string_view line = lines[i];
      const size_t colon = line.find(':');
      if (colon == std::string_view::npos || colon == 0) {
        Fail(400, "malformed header line");
        return;
      }
      const std::string_view raw_name = line.substr(0, colon);
      if (!std::all_of(raw_name.begin(), raw_name.end(), IsTokenChar)) {
        Fail(400, "malformed header name");
        return;
      }
      std::string name = ToLower(raw_name);
      const std::string_view value = Trim(line.substr(colon + 1));
      if (name == "content-length") {
        size_t parsed = 0;
        if (!ParseContentLength(value, &parsed) ||
            (have_content_length && parsed != content_length)) {
          Fail(400, "malformed Content-Length");
          return;
        }
        content_length = parsed;
        have_content_length = true;
      } else if (name == "transfer-encoding") {
        // Chunked-free parser by design; refuse rather than misframe.
        Fail(400, "Transfer-Encoding is not supported");
        return;
      }
      request_.headers.emplace_back(std::move(name), std::string(value));
    }
    if (content_length > limits_.max_body_bytes) {
      Fail(400, "declared body exceeds limit");
      return;
    }

    // Connection semantics: header overrides the version default.
    request_.keep_alive = request_.version_minor >= 1;
    if (const std::string* conn = request_.FindHeader("connection")) {
      if (EqualsIgnoreCase(*conn, "close")) {
        request_.keep_alive = false;
      } else if (EqualsIgnoreCase(*conn, "keep-alive")) {
        request_.keep_alive = true;
      }
    }

    buffer_.erase(0, body_start);
    headers_done_ = true;
    body_needed_ = content_length;
  }

  // Body: wait until the declared length is buffered.
  if (buffer_.size() < body_needed_) return;  // kNeedMore
  request_.body = buffer_.substr(0, body_needed_);
  buffer_.erase(0, body_needed_);
  state_ = State::kComplete;
}

}  // namespace kpef::serve

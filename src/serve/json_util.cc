#include "serve/json_util.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace kpef::serve {

namespace {

/// Cursor over the input with the shared depth budget.
struct Parser {
  std::string_view text;
  size_t pos = 0;
  size_t max_depth;
  std::string* error;

  bool Fail(const char* reason) {
    if (error->empty()) {
      char buf[96];
      std::snprintf(buf, sizeof(buf), "%s at offset %zu", reason, pos);
      *error = buf;
    }
    return false;
  }

  bool AtEnd() const { return pos >= text.size(); }
  char Peek() const { return text[pos]; }

  void SkipWhitespace() {
    while (!AtEnd()) {
      const char c = text[pos];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos;
      } else {
        break;
      }
    }
  }

  bool Literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word) return Fail("invalid literal");
    pos += word.size();
    return true;
  }

  bool ParseHex4(uint32_t* out) {
    if (pos + 4 > text.size()) return Fail("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text[pos + static_cast<size_t>(i)];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Fail("invalid \\u escape");
      }
    }
    pos += 4;
    *out = value;
    return true;
  }

  bool ParseString(std::string* out) {
    ++pos;  // opening quote
    out->clear();
    while (true) {
      if (AtEnd()) return Fail("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text[pos]);
      if (c == '"') {
        ++pos;
        return true;
      }
      if (c == '\\') {
        ++pos;
        if (AtEnd()) return Fail("unterminated escape");
        const char e = text[pos++];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            uint32_t cp = 0;
            if (!ParseHex4(&cp)) return false;
            if (cp >= 0xD800 && cp <= 0xDBFF) {
              // High surrogate: must pair with a low surrogate escape.
              if (pos + 2 > text.size() || text[pos] != '\\' ||
                  text[pos + 1] != 'u') {
                return Fail("lone high surrogate");
              }
              pos += 2;
              uint32_t low = 0;
              if (!ParseHex4(&low)) return false;
              if (low < 0xDC00 || low > 0xDFFF) {
                return Fail("invalid surrogate pair");
              }
              cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
            } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
              return Fail("lone low surrogate");
            }
            // Encode the code point as UTF-8.
            if (cp < 0x80) {
              out->push_back(static_cast<char>(cp));
            } else if (cp < 0x800) {
              out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
              out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
            } else if (cp < 0x10000) {
              out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
              out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
            } else {
              out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
              out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
            }
            break;
          }
          default:
            return Fail("invalid escape character");
        }
        continue;
      }
      if (c < 0x20) return Fail("unescaped control character");
      // Raw bytes (incl. multibyte UTF-8, validated whole-input upfront).
      out->push_back(static_cast<char>(c));
      ++pos;
    }
  }

  bool ParseNumber(double* out) {
    const size_t start = pos;
    if (!AtEnd() && Peek() == '-') ++pos;
    if (AtEnd() || Peek() < '0' || Peek() > '9') {
      return Fail("invalid number");
    }
    if (Peek() == '0') {
      ++pos;  // no leading zeros
    } else {
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos;
    }
    if (!AtEnd() && Peek() == '.') {
      ++pos;
      if (AtEnd() || Peek() < '0' || Peek() > '9') {
        return Fail("invalid fraction");
      }
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos;
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      ++pos;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos;
      if (AtEnd() || Peek() < '0' || Peek() > '9') {
        return Fail("invalid exponent");
      }
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos;
    }
    const std::string token(text.substr(start, pos - start));
    const double value = std::strtod(token.c_str(), nullptr);
    if (!std::isfinite(value)) return Fail("number out of range");
    *out = value;
    return true;
  }

  bool ParseValue(JsonValue* out, size_t depth) {
    if (depth > max_depth) return Fail("nesting too deep");
    SkipWhitespace();
    if (AtEnd()) return Fail("unexpected end of input");
    const char c = Peek();
    switch (c) {
      case '{': {
        ++pos;
        out->type = JsonValue::Type::kObject;
        SkipWhitespace();
        if (!AtEnd() && Peek() == '}') {
          ++pos;
          return true;
        }
        while (true) {
          SkipWhitespace();
          if (AtEnd() || Peek() != '"') return Fail("expected object key");
          std::string key;
          if (!ParseString(&key)) return false;
          SkipWhitespace();
          if (AtEnd() || Peek() != ':') return Fail("expected ':'");
          ++pos;
          JsonValue value;
          if (!ParseValue(&value, depth + 1)) return false;
          out->object_items.emplace_back(std::move(key), std::move(value));
          SkipWhitespace();
          if (!AtEnd() && Peek() == ',') {
            ++pos;
            continue;
          }
          if (!AtEnd() && Peek() == '}') {
            ++pos;
            return true;
          }
          return Fail("expected ',' or '}'");
        }
      }
      case '[': {
        ++pos;
        out->type = JsonValue::Type::kArray;
        SkipWhitespace();
        if (!AtEnd() && Peek() == ']') {
          ++pos;
          return true;
        }
        while (true) {
          JsonValue item;
          if (!ParseValue(&item, depth + 1)) return false;
          out->array_items.push_back(std::move(item));
          SkipWhitespace();
          if (!AtEnd() && Peek() == ',') {
            ++pos;
            continue;
          }
          if (!AtEnd() && Peek() == ']') {
            ++pos;
            return true;
          }
          return Fail("expected ',' or ']'");
        }
      }
      case '"':
        out->type = JsonValue::Type::kString;
        return ParseString(&out->string_value);
      case 't':
        out->type = JsonValue::Type::kBool;
        out->bool_value = true;
        return Literal("true");
      case 'f':
        out->type = JsonValue::Type::kBool;
        out->bool_value = false;
        return Literal("false");
      case 'n':
        out->type = JsonValue::Type::kNull;
        return Literal("null");
      default:
        out->type = JsonValue::Type::kNumber;
        return ParseNumber(&out->number_value);
    }
  }
};

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  for (const auto& [name, value] : object_items) {
    if (name == key) return &value;
  }
  return nullptr;
}

bool IsValidUtf8(std::string_view text) {
  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    const unsigned char b0 = static_cast<unsigned char>(text[i]);
    if (b0 < 0x80) {
      ++i;
      continue;
    }
    size_t len;
    uint32_t cp;
    if ((b0 & 0xE0) == 0xC0) {
      len = 2;
      cp = b0 & 0x1F;
    } else if ((b0 & 0xF0) == 0xE0) {
      len = 3;
      cp = b0 & 0x0F;
    } else if ((b0 & 0xF8) == 0xF0) {
      len = 4;
      cp = b0 & 0x07;
    } else {
      return false;  // continuation or invalid lead byte
    }
    if (i + len > n) return false;
    for (size_t k = 1; k < len; ++k) {
      const unsigned char b = static_cast<unsigned char>(text[i + k]);
      if ((b & 0xC0) != 0x80) return false;
      cp = (cp << 6) | (b & 0x3F);
    }
    // Overlongs, surrogates, and out-of-range code points.
    if ((len == 2 && cp < 0x80) || (len == 3 && cp < 0x800) ||
        (len == 4 && cp < 0x10000) || cp > 0x10FFFF ||
        (cp >= 0xD800 && cp <= 0xDFFF)) {
      return false;
    }
    i += len;
  }
  return true;
}

bool ParseJson(std::string_view text, JsonValue* out, std::string* error,
               size_t max_depth) {
  error->clear();
  *out = JsonValue();
  if (!IsValidUtf8(text)) {
    *error = "body is not valid UTF-8";
    return false;
  }
  Parser parser{text, 0, max_depth, error};
  if (!parser.ParseValue(out, 0)) return false;
  parser.SkipWhitespace();
  if (!parser.AtEnd()) {
    parser.Fail("trailing characters after document");
    return false;
  }
  return true;
}

void AppendJsonString(std::string_view s, std::string* out) {
  out->push_back('"');
  for (const char c : s) {
    const unsigned char u = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\b': out->append("\\b"); break;
      case '\f': out->append("\\f"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", u);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

std::string JsonNumber(double value) {
  if (value == 0.0) return "0";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  // Trim to the shortest representation that round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    char candidate[32];
    std::snprintf(candidate, sizeof(candidate), "%.*g", precision, value);
    if (std::strtod(candidate, nullptr) == value) {
      return candidate;
    }
  }
  return buf;
}

}  // namespace kpef::serve

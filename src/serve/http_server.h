// Dependency-free epoll HTTP/1.1 server (DESIGN.md §11).
//
// One event-loop thread owns every socket: accept, read, parse,
// dispatch, write. Handlers run on the loop thread but respond through a
// thread-safe Responder, so a handler may hand the request to another
// thread (the micro-batcher) and answer later — the response is routed
// back into the loop via an eventfd wakeup. One request is in flight per
// connection at a time; pipelined bytes stay buffered (and the
// connection's read interest is parked) until the response is written,
// which bounds per-connection memory without breaking pipelining.
//
// Shutdown contract (SIGTERM path): ShutdownGracefully() closes the
// listener, lets in-flight requests finish (their responses carry
// "Connection: close"), closes idle keep-alive connections immediately,
// and force-closes whatever remains at the timeout.

#ifndef KPEF_SERVE_HTTP_SERVER_H_
#define KPEF_SERVE_HTTP_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "serve/http_parser.h"

namespace kpef::serve {

struct HttpServerConfig {
  std::string address = "127.0.0.1";
  /// 0 = ephemeral; the bound port is available from port() after
  /// Start().
  uint16_t port = 0;
  int backlog = 128;
  size_t max_connections = 1024;
  /// Keep-alive connections idle longer than this are closed (<= 0
  /// disables the sweep).
  double idle_timeout_ms = 60000.0;
  HttpParserLimits limits;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  /// Extra headers appended verbatim (e.g. {"retry-after", "1"}).
  std::vector<std::pair<std::string, std::string>> extra_headers;
};

class HttpServer {
 public:
  /// Thread-safe, call-at-most-once reply channel for one request.
  /// Calling it after the connection died (or twice) is a safe no-op.
  using Responder = std::function<void(HttpResponse)>;
  /// Invoked on the event-loop thread once per parsed request. The
  /// HttpRequest reference is valid only for the duration of the call —
  /// copy what outlives it. MUST NOT block: hand slow work to another
  /// thread and reply through the Responder.
  using Handler = std::function<void(const HttpRequest&, Responder)>;

  HttpServer(HttpServerConfig config, Handler handler);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and starts the event loop.
  Status Start();

  /// Port actually bound (after Start(); useful with config.port = 0).
  uint16_t port() const { return port_; }

  /// Stops accepting, finishes in-flight requests, then stops the loop.
  /// Blocks up to `timeout_ms`, then force-closes stragglers. Safe to
  /// call from any thread (including a signal-watcher); idempotent.
  void ShutdownGracefully(double timeout_ms = 10000.0);

  bool draining() const {
    return draining_.load(std::memory_order_relaxed);
  }

  /// Connections currently tracked by the loop (tests/health only).
  size_t ActiveConnectionsForTest() const;

 private:
  struct Connection {
    uint64_t gen = 0;
    HttpRequestParser parser;
    /// A request was dispatched and its response is still pending.
    bool in_flight = false;
    /// Close once the write buffer drains.
    bool close_after_write = false;
    std::string out;
    size_t out_offset = 0;
    std::chrono::steady_clock::time_point last_activity;

    explicit Connection(HttpParserLimits limits) : parser(limits) {}
  };

  struct RoutedResponse {
    int fd = -1;
    uint64_t gen = 0;
    HttpResponse response;
  };

  void Loop();
  void AcceptNew();
  void HandleReadable(int fd);
  void HandleWritable(int fd);
  /// Dispatches the parser's completed request if the connection is
  /// free; parks read interest while a request is in flight.
  void MaybeDispatch(int fd);
  /// Serializes `response` into the connection's write buffer and
  /// starts writing.
  void QueueResponse(int fd, HttpResponse response, bool close_after);
  void DrainRoutedResponses();
  void TryWrite(int fd);
  void UpdateInterest(int fd);
  void CloseConnection(int fd);
  void CloseIdleConnections();
  /// Cross-thread entry used by Responders.
  void RouteResponse(int fd, uint64_t gen, HttpResponse response);
  void WakeLoop();

  const HttpServerConfig config_;
  const Handler handler_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int event_fd_ = -1;
  uint16_t port_ = 0;
  std::thread loop_thread_;

  std::map<int, Connection> connections_;  // loop thread only
  uint64_t next_gen_ = 1;                  // loop thread only

  std::mutex routed_mutex_;
  std::vector<RoutedResponse> routed_;
  /// Set once the loop exited; RouteResponse drops instead of waking.
  bool loop_stopped_ = false;  // guarded by routed_mutex_

  std::atomic<bool> draining_{false};
  std::atomic<bool> force_stop_{false};
  std::mutex shutdown_mutex_;
  std::condition_variable shutdown_cv_;
  bool loop_done_ = false;  // guarded by shutdown_mutex_
};

}  // namespace kpef::serve

#endif  // KPEF_SERVE_HTTP_SERVER_H_

#include "serve/batcher.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "obs/pipeline_metrics.h"

namespace kpef::serve {

namespace {

double MillisBetween(CancelToken::Clock::time_point from,
                     CancelToken::Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

}  // namespace

MicroBatcher::MicroBatcher(BatcherConfig config, BatchExecuteFn execute)
    : config_(config), execute_(std::move(execute)) {
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

MicroBatcher::~MicroBatcher() { Shutdown(); }

bool MicroBatcher::Submit(BatchRequest request, CompletionFn done) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (draining_ || queue_.size() >= config_.max_pending) {
      if (!draining_) KPEF_COUNTER_ADD(obs::kServeShed, 1);
      return false;
    }
    queue_.push_back(Pending{std::move(request), std::move(done),
                             CancelToken::Clock::now()});
  }
  cv_.notify_one();
  return true;
}

void MicroBatcher::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    draining_ = true;
  }
  cv_.notify_all();
  // Serialize concurrent Shutdown() callers on the join itself;
  // joinable() flips false after the first join completes.
  std::lock_guard<std::mutex> join_lock(join_mutex_);
  if (dispatcher_.joinable()) dispatcher_.join();
}

size_t MicroBatcher::PendingForTest() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void MicroBatcher::DispatchLoop() {
  const auto max_age =
      std::chrono::duration_cast<CancelToken::Clock::duration>(
          std::chrono::duration<double, std::milli>(config_.max_queue_age_ms));
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    if (queue_.empty()) {
      if (draining_) return;
      cv_.wait(lock, [this] { return !queue_.empty() || draining_; });
      continue;
    }
    // Flush when full, stale, or draining; otherwise sleep until the
    // oldest request ages out (new arrivals re-examine the predicate).
    const auto flush_at = queue_.front().enqueue_time + max_age;
    const bool full = queue_.size() >= config_.max_batch_size;
    if (!full && !draining_ && CancelToken::Clock::now() < flush_at) {
      cv_.wait_until(lock, flush_at, [this, flush_at] {
        return draining_ || queue_.size() >= config_.max_batch_size ||
               CancelToken::Clock::now() >= flush_at;
      });
      continue;
    }
    const size_t take = std::min(queue_.size(), config_.max_batch_size);
    std::vector<Pending> batch;
    batch.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    lock.unlock();
    RunBatch(std::move(batch));
    lock.lock();
  }
}

void MicroBatcher::RunBatch(std::vector<Pending> batch) {
  const auto dispatch_time = CancelToken::Clock::now();

  // Requests whose deadline already passed never reach the engine: they
  // complete immediately as expired, and do not shrink the batch others
  // ride in (they were admitted, so their slot was real).
  std::vector<size_t> live;  // indices into batch
  live.reserve(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    const Pending& p = batch[i];
    if (p.request.has_deadline && dispatch_time >= p.request.deadline) {
      BatchResponse response;
      response.deadline_exceeded = true;
      response.queue_wait_ms = MillisBetween(p.enqueue_time, dispatch_time);
      KPEF_COUNTER_ADD(obs::kServeDeadlineExceeded, 1);
      KPEF_HISTOGRAM_OBSERVE(obs::kServeQueueWaitMs, response.queue_wait_ms);
      if (p.done) p.done(std::move(response));
    } else {
      live.push_back(i);
    }
  }
  if (live.empty()) return;

  // One engine call for the whole batch. top_n is the max over the
  // batch, clamped to max_top_n so one oversized request cannot inflate
  // TA work for every rider; per-request lists are truncated afterwards
  // (TA ranking is exact, so the top-n' of a top-n list with n' <= n is
  // the same list). Deadlines propagate per slot: the engine skips a
  // query at its next phase boundary once that query's own budget
  // expires, and the whole call is additionally bounded by the LATEST
  // live deadline when every request carries one.
  size_t top_n = 0;
  uint64_t clamped = 0;
  bool all_have_deadlines = true;
  bool any_deadline = false;
  CancelToken::Clock::time_point latest_deadline =
      CancelToken::Clock::time_point::min();
  std::vector<std::string> texts;
  texts.reserve(live.size());
  for (const size_t i : live) {
    const BatchRequest& r = batch[i].request;
    size_t n = r.top_n;
    if (config_.max_top_n > 0 && n > config_.max_top_n) {
      n = config_.max_top_n;
      ++clamped;
    }
    top_n = std::max(top_n, n);
    texts.push_back(r.query);
    if (r.has_deadline) {
      any_deadline = true;
      latest_deadline = std::max(latest_deadline, r.deadline);
    } else {
      all_have_deadlines = false;
    }
  }
  if (clamped > 0) KPEF_COUNTER_ADD(obs::kServeTopNClamped, clamped);
  BatchQueryOptions options;
  options.pool = config_.pool;
  if (any_deadline) {
    options.deadlines.reserve(live.size());
    for (const size_t i : live) {
      const BatchRequest& r = batch[i].request;
      options.deadlines.push_back(
          r.has_deadline ? r.deadline
                         : CancelToken::Clock::time_point::max());
    }
  }
  if (all_have_deadlines) {
    options.cancel = CancelToken::WithDeadline(latest_deadline);
  }
  bool any_traced = false;
  for (const size_t i : live) {
    if (batch[i].request.trace_key != 0) {
      any_traced = true;
      break;
    }
  }
  if (any_traced) {
    options.trace_keys.reserve(live.size());
    for (const size_t i : live) {
      options.trace_keys.push_back(batch[i].request.trace_key);
    }
  }

  KPEF_COUNTER_ADD(obs::kServeBatches, 1);
  KPEF_HISTOGRAM_OBSERVE(obs::kServeBatchSize, live.size());

  std::vector<QueryStats> stats;
  std::vector<std::vector<ExpertScore>> results =
      execute_(texts, top_n, options, &stats);
  const auto completion_time = CancelToken::Clock::now();

  for (size_t slot = 0; slot < live.size(); ++slot) {
    Pending& p = batch[live[slot]];
    BatchResponse response;
    response.batch_size = live.size();
    response.queue_wait_ms = MillisBetween(p.enqueue_time, dispatch_time);
    if (slot < results.size()) {
      response.experts = std::move(results[slot]);
    }
    if (slot < stats.size()) response.stats = stats[slot];
    if (response.experts.size() > p.request.top_n) {
      response.experts.resize(p.request.top_n);
    }
    response.deadline_exceeded =
        response.stats.deadline_exceeded ||
        (p.request.has_deadline && completion_time >= p.request.deadline);
    if (response.deadline_exceeded) {
      KPEF_COUNTER_ADD(obs::kServeDeadlineExceeded, 1);
    }
    KPEF_HISTOGRAM_OBSERVE(obs::kServeQueueWaitMs, response.queue_wait_ms);
    if (p.done) p.done(std::move(response));
  }
}

}  // namespace kpef::serve

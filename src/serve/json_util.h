// Minimal dependency-free JSON for the serving boundary: a strict
// recursive-descent parser (full UTF-8 validation, bounded depth, whole
// document must be consumed) and escaping helpers for response
// rendering. The obs/ JSON exporter writes metrics documents; this unit
// exists because the server must additionally *read* untrusted JSON.

#ifndef KPEF_SERVE_JSON_UTIL_H_
#define KPEF_SERVE_JSON_UTIL_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace kpef::serve {

/// Parsed JSON document node. A tagged struct rather than std::variant:
/// the recursion is shallow and the accessors stay greppable.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<JsonValue> array_items;
  std::vector<std::pair<std::string, JsonValue>> object_items;

  bool is_object() const { return type == Type::kObject; }
  bool is_string() const { return type == Type::kString; }
  bool is_number() const { return type == Type::kNumber; }

  /// First member with `key` in an object; nullptr otherwise.
  const JsonValue* Find(std::string_view key) const;
};

/// Parses `text` as one complete JSON document. Returns false (with a
/// short reason in `*error`) on: syntax errors, trailing garbage,
/// nesting beyond `max_depth`, invalid UTF-8 anywhere in the input,
/// lone surrogate escapes, or non-finite numbers. Never throws.
bool ParseJson(std::string_view text, JsonValue* out, std::string* error,
               size_t max_depth = 32);

/// True when `text` is well-formed UTF-8 (rejects overlongs, surrogates,
/// and code points above U+10FFFF).
bool IsValidUtf8(std::string_view text);

/// Appends `s` as a quoted, escaped JSON string literal.
void AppendJsonString(std::string_view s, std::string* out);

/// Formats a double the way the metrics exporter does: shortest
/// round-trip representation, "0" for zero, no exponent surprises.
std::string JsonNumber(double value);

}  // namespace kpef::serve

#endif  // KPEF_SERVE_JSON_UTIL_H_

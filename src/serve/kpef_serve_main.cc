// kpef_serve: network-facing serving binary. Loads the artifacts that
// `kpef_cli build` persisted and serves /v1/find_experts, /healthz, and
// /metrics over HTTP with dynamic micro-batching (DESIGN.md §11).
//
//   kpef_serve --graph graph.kg --model-dir model [--address 127.0.0.1]
//              [--port 8080] [--shards 1] [--threads 0]
//              [--reload-watch 0] [--batch-size 16] [--batch-age-ms 4]
//              [--max-pending 256] [--default-n 10] [--max-n 400]
//              [--default-deadline-ms 0] [--metrics-out path]
//              [--access-log path|-] [--trace-mode off|sampled|always]
//              [--trace-head-every 64] [--slow-ms 100] [--slow-queue-ms 50]
//              [--rerank-factor 2.0] [--wal path]
//              [--ingest-merge-edges 20000]
//
// --wal PATH enables streaming ingestion: the WAL at PATH is replayed
// over the loaded artifacts at startup (creating the file when absent),
// and POST /v1/admin/ingest accepts JSON paper batches that are logged,
// folded into the serving state, and published as new generations while
// queries keep running. Incompatible with --shards > 1.
// --ingest-merge-edges caps how many delta-overlay edges may accumulate
// before the coordinator compacts them back into flat CSR.
//
// --shards N partitions the corpus over N per-shard PG-Indexes
// (EngineGroup); POST /v1/admin/reload hot-swaps the artifact
// generation with zero downtime, and --reload-watch S polls the model
// dir every S seconds and reloads automatically when an artifact file's
// mtime changes. --threads N sizes the serving pool the micro-batcher
// fans SearchBatch over (0 = hardware concurrency).
//
// SIGTERM/SIGINT drain gracefully: stop accepting, flush queued batches,
// answer in-flight requests, then exit 0.

#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/build_info.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "core/engine_group.h"
#include "data/corpus_builder.h"
#include "data/dataset.h"
#include "graph/graph_io.h"
#include "obs/export.h"
#include "obs/pipeline_metrics.h"
#include "ingest/coordinator.h"
#include "serve/http_server.h"
#include "serve/service.h"

namespace {

using namespace kpef;

std::map<std::string, std::string> ParseFlags(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 1; i + 1 < argc; i += 2) {
    std::string key = argv[i];
    if (key.rfind("--", 0) == 0) key = key.substr(2);
    flags[key] = argv[i + 1];
  }
  return flags;
}

std::string FlagOr(const std::map<std::string, std::string>& flags,
                   const std::string& key, const std::string& fallback) {
  auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kInfo);
  const auto flags = ParseFlags(argc, argv);
  const std::string graph_path = FlagOr(flags, "graph", "graph.kg");
  const std::string model_dir = FlagOr(flags, "model-dir", "model");

  // Block the shutdown signals before any thread spawns, so they are
  // delivered to the sigwait below, never to a worker.
  sigset_t sigset;
  sigemptyset(&sigset);
  sigaddset(&sigset, SIGTERM);
  sigaddset(&sigset, SIGINT);
  pthread_sigmask(SIG_BLOCK, &sigset, nullptr);

  obs::WarmPipelineMetrics();

  auto graph = LoadGraph(graph_path);
  if (!graph.ok()) return Fail(graph.status());
  auto dataset = DatasetFromGraph(std::move(graph).value(), graph_path);
  if (!dataset.ok()) return Fail(dataset.status());
  const Corpus corpus = BuildPaperCorpus(*dataset);

  // Mirror kpef_cli's build-time retrieval depth so loaded artifacts
  // serve with the configuration they were built for.
  EngineGroup::Options group_options;
  group_options.engine.top_m =
      std::max<size_t>(50, dataset->Papers().size() / 10);
  // Serving-time recall knob of the quantized index: depth of the exact
  // fp32 rerank, as a multiple of the result count (ignored when the
  // loaded artifact carries no SQ8 codes).
  group_options.engine.pg_index.rerank_factor =
      std::atof(FlagOr(flags, "rerank-factor", "2.0").c_str());
  group_options.num_shards = static_cast<size_t>(
      std::max(1, std::atoi(FlagOr(flags, "shards", "1").c_str())));
  auto group = EngineGroup::Load(&*dataset, &corpus, group_options, model_dir);
  if (!group.ok()) return Fail(group.status());
  const EngineInfo info = (*group)->Info();
  std::printf("kpef_serve %s (%s build)\n", BuildGitHash(), BuildType());
  std::printf(
      "loaded %s: %zu papers, %zu experts, dim %zu, index=%s, "
      "shards=%zu, generation=%llu\n",
      model_dir.c_str(), info.num_papers, info.num_experts,
      info.embedding_dim,
      !info.has_index        ? "brute"
      : info.quantized_index ? "pg-sq8"
                             : "pg",
      info.num_shards, static_cast<unsigned long long>(info.generation));

  // --wal: streaming-ingest coordinator (replays the log before the
  // server opens its socket, so the first query already sees the
  // caught-up generation).
  std::unique_ptr<IngestCoordinator> ingest;
  const std::string wal_path = FlagOr(flags, "wal", "");
  if (!wal_path.empty()) {
    if (group_options.num_shards > 1) {
      return Fail(Status::FailedPrecondition(
          "--wal requires --shards 1 (streaming ingest appends rows; "
          "per-batch re-sharding would defeat the point)"));
    }
    IngestOptions ingest_options;
    ingest_options.wal_path = wal_path;
    ingest_options.merge_pending_edge_budget = static_cast<size_t>(
        std::max(0, std::atoi(FlagOr(flags, "ingest-merge-edges", "20000")
                                  .c_str())));
    auto coordinator = IngestCoordinator::Create(
        group->get(), group_options.engine, std::move(ingest_options));
    if (!coordinator.ok()) return Fail(coordinator.status());
    ingest = std::move(coordinator).value();
    const IngestStats ingest_stats = ingest->Stats();
    std::printf("wal %s: %llu records replayed, %llu durable bytes\n",
                wal_path.c_str(),
                static_cast<unsigned long long>(ingest_stats.replayed_records),
                static_cast<unsigned long long>(ingest_stats.wal_bytes));
  }

  // The pool the micro-batcher hands to FindExpertsBatch: SearchBatch
  // and the encode/ranking phases all fan out over it (ROADMAP item —
  // previously the batcher left BatchQueryOptions::pool null and the
  // engine silently fell back to its default pool).
  ThreadPool serving_pool(static_cast<size_t>(
      std::max(0, std::atoi(FlagOr(flags, "threads", "0").c_str()))));

  serve::ServiceConfig service_config;
  service_config.batcher.max_batch_size = static_cast<size_t>(
      std::atoi(FlagOr(flags, "batch-size", "16").c_str()));
  service_config.batcher.max_queue_age_ms =
      std::atof(FlagOr(flags, "batch-age-ms", "4").c_str());
  service_config.batcher.max_pending = static_cast<size_t>(
      std::atoi(FlagOr(flags, "max-pending", "256").c_str()));
  service_config.batcher.max_top_n = static_cast<size_t>(
      std::max(0, std::atoi(FlagOr(flags, "max-n", "400").c_str())));
  service_config.batcher.pool = &serving_pool;
  service_config.reload_dir = model_dir;
  service_config.default_top_n = static_cast<size_t>(
      std::atoi(FlagOr(flags, "default-n", "10").c_str()));
  // The HTTP-level cap mirrors the batcher's (0 = batcher uncapped, but
  // the parse-time clamp still needs a bound).
  if (service_config.batcher.max_top_n > 0) {
    service_config.max_top_n = service_config.batcher.max_top_n;
  }
  service_config.default_deadline_ms =
      std::atof(FlagOr(flags, "default-deadline-ms", "0").c_str());
  service_config.access_log_path = FlagOr(flags, "access-log", "");
  const std::string trace_mode = FlagOr(flags, "trace-mode", "sampled");
  if (trace_mode == "off") {
    service_config.trace_mode = obs::TraceMode::kOff;
  } else if (trace_mode == "always") {
    service_config.trace_mode = obs::TraceMode::kAlwaysOn;
  } else {
    service_config.trace_mode = obs::TraceMode::kSampled;
  }
  service_config.trace_head_every = static_cast<uint32_t>(
      std::atoi(FlagOr(flags, "trace-head-every", "64").c_str()));
  service_config.slow_e2e_ms =
      std::atof(FlagOr(flags, "slow-ms", "100").c_str());
  service_config.slow_queue_wait_ms =
      std::atof(FlagOr(flags, "slow-queue-ms", "50").c_str());

  serve::HttpServerConfig server_config;
  server_config.address = FlagOr(flags, "address", "127.0.0.1");
  server_config.port =
      static_cast<uint16_t>(std::atoi(FlagOr(flags, "port", "8080").c_str()));

  // The server's handler references `service`, so `service` must be
  // declared first (destroyed last). That is safe only because the
  // explicit drain below runs server.ShutdownGracefully() and then
  // service->Drain() before either destructor: by destruction time the
  // batcher has no in-flight completions left to route.
  auto service = serve::ExpertSearchService::ForEngineGroup(
      group->get(), service_config, ingest.get());
  serve::HttpServer server(
      server_config,
      [&service](const serve::HttpRequest& request,
                 serve::HttpServer::Responder respond) {
        service->Handle(request, std::move(respond));
      });
  const Status started = server.Start();
  if (!started.ok()) return Fail(started);
  std::printf("serving on http://%s:%u (batch<=%zu, age<=%.1fms, "
              "queue<=%zu)\n",
              server_config.address.c_str(), server.port(),
              service_config.batcher.max_batch_size,
              service_config.batcher.max_queue_age_ms,
              service_config.batcher.max_pending);
  std::fflush(stdout);

  // --reload-watch S: poll the artifact files every S seconds and
  // hot-swap the generation when any mtime changes (the push-based
  // /v1/admin/reload endpoint stays available either way).
  const double watch_seconds =
      std::atof(FlagOr(flags, "reload-watch", "0").c_str());
  std::mutex watch_mutex;
  std::condition_variable watch_cv;
  bool watch_stop = false;
  std::thread watcher;
  if (watch_seconds > 0) {
    watcher = std::thread([&] {
      namespace fs = std::filesystem;
      const char* kArtifacts[] = {"encoder.bin", "embeddings.bin",
                                  "pgindex.bin"};
      auto stamp = [&] {
        // min(), not {}: the file clock's zero point can postdate every
        // real mtime (libstdc++ anchors it in the future), so a {}-
        // initialized max would swallow all timestamps.
        auto latest = fs::file_time_type::min();
        for (const char* name : kArtifacts) {
          std::error_code ec;
          const auto t = fs::last_write_time(fs::path(model_dir) / name, ec);
          if (!ec && t > latest) latest = t;
        }
        return latest;
      };
      auto last = stamp();
      const auto period = std::chrono::duration<double>(watch_seconds);
      std::unique_lock<std::mutex> lock(watch_mutex);
      while (!watch_cv.wait_for(lock, period, [&] { return watch_stop; })) {
        lock.unlock();
        const auto now_stamp = stamp();
        if (now_stamp > last) {
          last = now_stamp;
          const Status s = (*group)->Reload(model_dir);
          if (s.ok()) {
            std::printf("reload-watch: published generation %llu\n",
                        static_cast<unsigned long long>((*group)->generation()));
          } else {
            std::fprintf(stderr, "reload-watch: reload failed: %s\n",
                         s.ToString().c_str());
          }
          std::fflush(stdout);
        }
        lock.lock();
      }
    });
  }

  int sig = 0;
  sigwait(&sigset, &sig);
  std::printf("received %s, draining...\n",
              sig == SIGTERM ? "SIGTERM" : "SIGINT");
  std::fflush(stdout);

  // Drain order: stop the reload watcher, stop accepting and let
  // in-flight requests finish (the batcher is still running and answers
  // them), then stop the batcher + any in-flight admin reload.
  if (watcher.joinable()) {
    {
      std::lock_guard<std::mutex> lock(watch_mutex);
      watch_stop = true;
    }
    watch_cv.notify_all();
    watcher.join();
  }
  server.ShutdownGracefully(/*timeout_ms=*/15000.0);
  service->Drain();

  const std::string metrics_out = FlagOr(flags, "metrics-out", "");
  if (!metrics_out.empty()) {
    const Status s = obs::WriteMetricsFile(metrics_out);
    if (!s.ok()) return Fail(s);
    std::printf("wrote metrics to %s\n", metrics_out.c_str());
  }
  std::printf("drained, bye\n");
  return 0;
}

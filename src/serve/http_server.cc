#include "serve/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/pipeline_metrics.h"

namespace kpef::serve {

namespace {

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

}  // namespace

HttpServer::HttpServer(HttpServerConfig config, Handler handler)
    : config_(std::move(config)), handler_(std::move(handler)) {}

HttpServer::~HttpServer() {
  ShutdownGracefully(0.0);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (event_fd_ >= 0) ::close(event_fd_);
}

Status HttpServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.address.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad bind address: " + config_.address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Status::IOError(std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(listen_fd_, config_.backlog) < 0) {
    return Status::IOError(std::string("listen: ") + std::strerror(errno));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  event_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || event_fd_ < 0) {
    return Status::IOError("epoll_create1/eventfd failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = event_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, event_fd_, &ev);

  loop_thread_ = std::thread([this] { Loop(); });
  KPEF_LOG(Info) << "http server listening on " << config_.address << ":"
                 << port_;
  return Status::OK();
}

void HttpServer::WakeLoop() {
  if (event_fd_ < 0) return;
  const uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(event_fd_, &one, sizeof(one));
}

void HttpServer::ShutdownGracefully(double timeout_ms) {
  if (loop_thread_.joinable()) {
    draining_.store(true, std::memory_order_relaxed);
    WakeLoop();
    {
      std::unique_lock<std::mutex> lock(shutdown_mutex_);
      if (timeout_ms > 0.0) {
        shutdown_cv_.wait_for(
            lock, std::chrono::duration<double, std::milli>(timeout_ms),
            [this] { return loop_done_; });
      }
    }
    force_stop_.store(true, std::memory_order_relaxed);
    WakeLoop();
    loop_thread_.join();
  }
}

size_t HttpServer::ActiveConnectionsForTest() const {
  // Racy by nature (loop thread mutates the map); only used by tests
  // and logs after the loop has quiesced.
  return connections_.size();
}

void HttpServer::Loop() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  auto last_sweep = std::chrono::steady_clock::now();
  bool listener_armed = true;

  while (true) {
    const bool draining = draining_.load(std::memory_order_relaxed);
    if (draining && listener_armed) {
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
      // Close (not just unregister) the listener: half-accepted sockets
      // sitting in the kernel backlog would otherwise keep clients
      // blocked forever on a connection nobody will ever serve.
      ::close(listen_fd_);
      listen_fd_ = -1;
      listener_armed = false;
      // Keep-alive connections with nothing in flight will never get
      // another request we want; close them so the drain converges.
      std::vector<int> idle;
      for (const auto& [fd, conn] : connections_) {
        if (!conn.in_flight && conn.out_offset >= conn.out.size()) {
          idle.push_back(fd);
        }
      }
      for (int fd : idle) CloseConnection(fd);
    }
    if (draining && connections_.empty()) break;
    if (force_stop_.load(std::memory_order_relaxed)) break;

    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, 100);
    if (n < 0 && errno != EINTR) break;
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == listen_fd_) {
        AcceptNew();
      } else if (fd == event_fd_) {
        uint64_t drain = 0;
        [[maybe_unused]] ssize_t r = ::read(event_fd_, &drain, sizeof(drain));
        DrainRoutedResponses();
      } else {
        if (events[i].events & (EPOLLHUP | EPOLLERR)) {
          CloseConnection(fd);
          continue;
        }
        if (events[i].events & EPOLLIN) HandleReadable(fd);
        if (connections_.count(fd) && (events[i].events & EPOLLOUT)) {
          HandleWritable(fd);
        }
      }
    }

    const auto now = std::chrono::steady_clock::now();
    if (config_.idle_timeout_ms > 0.0 &&
        now - last_sweep > std::chrono::seconds(1)) {
      last_sweep = now;
      CloseIdleConnections();
    }
  }

  // Loop exit: close every remaining connection, then flag completion.
  std::vector<int> remaining;
  for (const auto& [fd, conn] : connections_) remaining.push_back(fd);
  for (int fd : remaining) CloseConnection(fd);
  {
    std::lock_guard<std::mutex> lock(routed_mutex_);
    loop_stopped_ = true;
    routed_.clear();
  }
  {
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
    loop_done_ = true;
  }
  shutdown_cv_.notify_all();
}

void HttpServer::AcceptNew() {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient error: back to epoll
    if (connections_.size() >= config_.max_connections ||
        draining_.load(std::memory_order_relaxed)) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto [it, inserted] = connections_.emplace(fd, Connection(config_.limits));
    it->second.gen = next_gen_++;
    it->second.last_activity = std::chrono::steady_clock::now();
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  }
}

void HttpServer::HandleReadable(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  Connection& conn = it->second;
  char buf[16384];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn.last_activity = std::chrono::steady_clock::now();
      if (conn.parser.state() != HttpRequestParser::State::kError) {
        conn.parser.Feed(buf, static_cast<size_t>(n));
      }
      continue;
    }
    if (n == 0) {
      // Peer closed. Anything short of a complete buffered request is
      // abandoned (a truncated request never reaches the handler).
      CloseConnection(fd);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConnection(fd);
    return;
  }
  if (conn.parser.state() == HttpRequestParser::State::kError) {
    if (!conn.in_flight && !conn.close_after_write) {
      KPEF_COUNTER_ADD(obs::kServeBadRequests, 1);
      HttpResponse response;
      response.status = conn.parser.error_status();
      response.body = "{\"error\":\"" + conn.parser.error_reason() + "\"}\n";
      QueueResponse(fd, std::move(response), /*close_after=*/true);
    } else {
      // Error behind an in-flight request: answer the live one, then
      // close (close_after is forced once the response goes out).
      conn.close_after_write = true;
    }
    return;
  }
  MaybeDispatch(fd);
}

void HttpServer::MaybeDispatch(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  Connection& conn = it->second;
  if (!conn.in_flight && conn.out.empty() && !conn.close_after_write &&
      conn.parser.state() == HttpRequestParser::State::kError) {
    // A malformed pipelined request surfaced once the previous response
    // flushed: reject and close.
    KPEF_COUNTER_ADD(obs::kServeBadRequests, 1);
    HttpResponse response;
    response.status = conn.parser.error_status();
    response.body = "{\"error\":\"" + conn.parser.error_reason() + "\"}\n";
    QueueResponse(fd, std::move(response), /*close_after=*/true);
    return;
  }
  if (!conn.in_flight &&
      conn.parser.state() == HttpRequestParser::State::kComplete) {
    conn.in_flight = true;
    const uint64_t gen = conn.gen;
    Responder responder = [this, fd, gen](HttpResponse response) {
      RouteResponse(fd, gen, std::move(response));
    };
    // The handler may respond synchronously (RouteResponse enqueues and
    // wakes the loop we are on; the eventfd event delivers it in this
    // same iteration batch) or from another thread later.
    const HttpRequest& request = conn.parser.request();
    const bool keep_alive = request.keep_alive;
    handler_(request, std::move(responder));
    // Release the request bytes; this may immediately complete the next
    // pipelined request, which waits until the response is written.
    auto again = connections_.find(fd);
    if (again == connections_.end()) return;
    again->second.close_after_write =
        again->second.close_after_write || !keep_alive;
    again->second.parser.ConsumeRequest();
  }
  UpdateInterest(fd);
}

void HttpServer::RouteResponse(int fd, uint64_t gen, HttpResponse response) {
  {
    std::lock_guard<std::mutex> lock(routed_mutex_);
    if (loop_stopped_) return;
    routed_.push_back(RoutedResponse{fd, gen, std::move(response)});
  }
  WakeLoop();
}

void HttpServer::DrainRoutedResponses() {
  std::vector<RoutedResponse> batch;
  {
    std::lock_guard<std::mutex> lock(routed_mutex_);
    batch.swap(routed_);
  }
  for (RoutedResponse& routed : batch) {
    auto it = connections_.find(routed.fd);
    // Generation guards against fd reuse: a late response for a closed
    // connection must not reach whoever owns the fd now.
    if (it == connections_.end() || it->second.gen != routed.gen ||
        !it->second.in_flight) {
      continue;
    }
    it->second.in_flight = false;
    QueueResponse(routed.fd, std::move(routed.response),
                  it->second.close_after_write ||
                      draining_.load(std::memory_order_relaxed));
  }
}

void HttpServer::QueueResponse(int fd, HttpResponse response,
                               bool close_after) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  Connection& conn = it->second;
  conn.close_after_write = close_after;

  std::string& out = conn.out;
  out.append("HTTP/1.1 ");
  out.append(std::to_string(response.status));
  out.push_back(' ');
  out.append(ReasonPhrase(response.status));
  out.append("\r\ncontent-type: ");
  out.append(response.content_type);
  out.append("\r\ncontent-length: ");
  out.append(std::to_string(response.body.size()));
  out.append("\r\nconnection: ");
  out.append(close_after ? "close" : "keep-alive");
  out.append("\r\n");
  for (const auto& [name, value] : response.extra_headers) {
    out.append(name);
    out.append(": ");
    out.append(value);
    out.append("\r\n");
  }
  out.append("\r\n");
  out.append(response.body);
  TryWrite(fd);
}

void HttpServer::TryWrite(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  Connection& conn = it->second;
  while (conn.out_offset < conn.out.size()) {
    const ssize_t n = ::send(fd, conn.out.data() + conn.out_offset,
                             conn.out.size() - conn.out_offset, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_offset += static_cast<size_t>(n);
      conn.last_activity = std::chrono::steady_clock::now();
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      UpdateInterest(fd);
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    CloseConnection(fd);
    return;
  }
  // Fully flushed.
  conn.out.clear();
  conn.out_offset = 0;
  if (conn.close_after_write) {
    CloseConnection(fd);
    return;
  }
  // The next pipelined request (if already parsed) can go out now.
  MaybeDispatch(fd);
}

void HttpServer::HandleWritable(int fd) { TryWrite(fd); }

void HttpServer::UpdateInterest(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  const Connection& conn = it->second;
  uint32_t interest = 0;
  // Parked while a request is in flight: backpressure lives in the
  // kernel socket buffer instead of our heap.
  if (!conn.in_flight) interest |= EPOLLIN;
  if (conn.out_offset < conn.out.size()) interest |= EPOLLOUT;
  epoll_event ev{};
  ev.events = interest;
  ev.data.fd = fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
}

void HttpServer::CloseConnection(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  connections_.erase(it);
}

void HttpServer::CloseIdleConnections() {
  const auto now = std::chrono::steady_clock::now();
  const auto limit = std::chrono::duration<double, std::milli>(
      config_.idle_timeout_ms);
  std::vector<int> idle;
  for (const auto& [fd, conn] : connections_) {
    if (!conn.in_flight && conn.out_offset >= conn.out.size() &&
        now - conn.last_activity > limit) {
      idle.push_back(fd);
    }
  }
  for (int fd : idle) CloseConnection(fd);
}

}  // namespace kpef::serve

// Statistical significance of effectiveness differences.
//
// Table II-style comparisons on a few dozen queries need a significance
// check before claiming a winner. Implements the standard paired
// bootstrap test over per-query metric values (e.g. average precision).

#ifndef KPEF_EVAL_SIGNIFICANCE_H_
#define KPEF_EVAL_SIGNIFICANCE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace kpef {

struct BootstrapResult {
  /// Mean per-query difference (a - b).
  double mean_difference = 0.0;
  /// Two-sided p-value for the null hypothesis "no difference".
  double p_value = 1.0;
  /// 95% bootstrap confidence interval of the mean difference.
  double ci_low = 0.0;
  double ci_high = 0.0;
  size_t num_queries = 0;
  size_t num_samples = 0;
};

/// Paired bootstrap over per-query scores of two systems (same queries,
/// same order). Resamples query sets with replacement `num_samples`
/// times; the p-value is the fraction of resampled mean differences whose
/// sign flips (doubled, capped at 1).
BootstrapResult PairedBootstrap(const std::vector<double>& scores_a,
                                const std::vector<double>& scores_b,
                                size_t num_samples = 10000,
                                uint64_t seed = 171);

}  // namespace kpef

#endif  // KPEF_EVAL_SIGNIFICANCE_H_

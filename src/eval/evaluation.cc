#include "eval/evaluation.h"

#include <cstdio>

#include "common/timer.h"
#include "embed/text_embedding.h"
#include "embed/vector_ops.h"
#include "eval/metrics.h"

namespace kpef {

Evaluator::Evaluator(const Dataset* dataset, const QuerySet* queries,
                     const Corpus* corpus, const TfIdfModel* reference,
                     const Matrix* reference_tokens)
    : dataset_(dataset),
      queries_(queries),
      corpus_(corpus),
      reference_(reference),
      reference_tokens_(reference_tokens) {
  if (reference_tokens_ != nullptr) {
    const size_t d = reference_tokens_->cols();
    sif_docs_ = Matrix(corpus_->NumDocuments(), d);
    for (size_t doc = 0; doc < corpus_->NumDocuments(); ++doc) {
      const std::vector<float> v =
          SifEmbedding(*reference_tokens_, corpus_->vocabulary(),
                       corpus_->NumDocuments(), corpus_->Document(doc));
      std::copy(v.begin(), v.end(), sif_docs_.Row(doc).begin());
    }
    // SIF common-component removal (approximated by the corpus mean):
    // without it every pair of documents shares a large generic
    // component and ADS saturates near 1 for all methods.
    sif_mean_.assign(d, 0.0f);
    for (size_t doc = 0; doc < corpus_->NumDocuments(); ++doc) {
      auto row = sif_docs_.Row(doc);
      for (size_t k = 0; k < d; ++k) sif_mean_[k] += row[k];
    }
    const float inv =
        1.0f / static_cast<float>(std::max<size_t>(1, corpus_->NumDocuments()));
    for (float& v : sif_mean_) v *= inv;
    for (size_t doc = 0; doc < corpus_->NumDocuments(); ++doc) {
      auto row = sif_docs_.Row(doc);
      for (size_t k = 0; k < d; ++k) row[k] -= sif_mean_[k];
      NormalizeL2(row);
    }
  }
}

double Evaluator::AverageDocumentSimilarity(
    const std::vector<NodeId>& experts, const std::string& query_text) const {
  if (experts.empty()) return 0.0;
  const HeteroGraph& graph = dataset_->graph;
  const std::vector<TokenId> query_tokens = corpus_->EncodeQuery(query_text);
  const SparseVector query_vec =
      reference_tokens_ == nullptr ? reference_->Vectorize(query_tokens)
                                   : SparseVector{};
  std::vector<float> query_sif;
  if (reference_tokens_ != nullptr) {
    query_sif = SifEmbedding(*reference_tokens_, corpus_->vocabulary(),
                             corpus_->NumDocuments(), query_tokens);
    for (size_t k = 0; k < query_sif.size(); ++k) {
      query_sif[k] -= sif_mean_[k];
    }
    NormalizeL2(query_sif);
  }
  double total = 0.0;
  for (NodeId author : experts) {
    const auto papers = graph.Neighbors(author, dataset_->ids.write);
    if (papers.empty()) continue;
    double author_total = 0.0;
    for (NodeId paper : papers) {
      const size_t doc = graph.LocalIndex(paper);
      if (reference_tokens_ != nullptr) {
        author_total += CosineSimilarity(sif_docs_.Row(doc), query_sif);
      } else {
        author_total +=
            TfIdfModel::Cosine(reference_->DocumentVector(doc), query_vec);
      }
    }
    total += author_total / static_cast<double>(papers.size());
  }
  return total / static_cast<double>(experts.size());
}

EvaluationResult Evaluator::Evaluate(RetrievalModel& model, size_t n) const {
  EvaluationResult result;
  result.model = model.name();
  result.num_queries = queries_->queries.size();
  if (queries_->queries.empty()) return result;

  std::vector<std::vector<NodeId>> rankings;
  std::vector<std::vector<NodeId>> truths;
  rankings.reserve(queries_->queries.size());
  truths.reserve(queries_->queries.size());
  double total_ms = 0.0;
  double total_ads = 0.0;
  for (const Query& query : queries_->queries) {
    Timer timer;
    const std::vector<ExpertScore> experts = model.FindExperts(query.text, n);
    total_ms += timer.ElapsedMillis();
    std::vector<NodeId> ranked;
    ranked.reserve(experts.size());
    for (const ExpertScore& e : experts) ranked.push_back(e.author);

    result.p_at_5 += PrecisionAtN(ranked, query.ground_truth, 5);
    result.p_at_10 += PrecisionAtN(ranked, query.ground_truth, 10);
    result.p_at_20 += PrecisionAtN(ranked, query.ground_truth, 20);
    total_ads += AverageDocumentSimilarity(ranked, query.text);
    rankings.push_back(std::move(ranked));
    truths.push_back(query.ground_truth);
  }
  const double q = static_cast<double>(queries_->queries.size());
  result.per_query_ap.reserve(rankings.size());
  for (size_t i = 0; i < rankings.size(); ++i) {
    result.per_query_ap.push_back(AveragePrecision(rankings[i], truths[i]));
  }
  result.map = MeanAveragePrecision(rankings, truths);
  result.p_at_5 /= q;
  result.p_at_10 /= q;
  result.p_at_20 /= q;
  result.ads = total_ads / q;
  result.mean_response_ms = total_ms / q;
  return result;
}

void PrintResultsTable(const std::vector<EvaluationResult>& results) {
  std::printf("%-22s %7s %7s %7s %7s %7s %10s\n", "Method", "MAP", "P@5",
              "P@10", "P@20", "ADS", "ms/query");
  for (const EvaluationResult& r : results) {
    std::printf("%-22s %7.3f %7.3f %7.3f %7.3f %7.3f %10.2f\n",
                r.model.c_str(), r.map, r.p_at_5, r.p_at_10, r.p_at_20, r.ads,
                r.mean_response_ms);
  }
}

}  // namespace kpef

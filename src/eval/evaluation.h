// Evaluation harness: runs a retrieval model over a query set and reports
// the paper's effectiveness (MAP, P@n, ADS) and efficiency (response
// time) measures.

#ifndef KPEF_EVAL_EVALUATION_H_
#define KPEF_EVAL_EVALUATION_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/queries.h"
#include "embed/matrix.h"
#include "eval/retrieval_model.h"
#include "text/corpus.h"
#include "text/tfidf.h"

namespace kpef {

/// Aggregated results of one model over one query set.
struct EvaluationResult {
  std::string model;
  double map = 0.0;
  double p_at_5 = 0.0;
  double p_at_10 = 0.0;
  double p_at_20 = 0.0;
  /// Average document similarity of the returned experts' papers to the
  /// query (§VI-A). Computed with a model-independent reference
  /// similarity so values are comparable across methods: SIF-embedding
  /// cosine when the evaluator was given reference token embeddings,
  /// TF-IDF cosine otherwise.
  double ads = 0.0;
  /// Mean per-query response time, milliseconds.
  double mean_response_ms = 0.0;
  size_t num_queries = 0;
  /// Per-query average precision, in query order (input to the paired
  /// bootstrap significance test).
  std::vector<double> per_query_ap;
};

/// Evaluates models against a fixed dataset + query set.
///
/// The corpus must index the dataset's papers in LocalIndex order (the
/// convention used throughout the library).
class Evaluator {
 public:
  /// `reference_tokens` (optional) switches the ADS reference similarity
  /// from lexical (TF-IDF cosine) to semantic (SIF-embedding cosine).
  Evaluator(const Dataset* dataset, const QuerySet* queries,
            const Corpus* corpus, const TfIdfModel* reference,
            const Matrix* reference_tokens = nullptr);

  /// Runs `model` over every query at ranking depth n.
  EvaluationResult Evaluate(RetrievalModel& model, size_t n = 20) const;

 private:
  double AverageDocumentSimilarity(const std::vector<NodeId>& experts,
                                   const std::string& query_text) const;

  const Dataset* dataset_;
  const QuerySet* queries_;
  const Corpus* corpus_;
  const TfIdfModel* reference_;
  const Matrix* reference_tokens_;
  /// Per-paper SIF embeddings (mean-removed, unit norm) when
  /// reference_tokens_ is set.
  Matrix sif_docs_;
  std::vector<float> sif_mean_;
};

/// Prints a result table (one row per result) to stdout, aligned.
void PrintResultsTable(const std::vector<EvaluationResult>& results);

}  // namespace kpef

#endif  // KPEF_EVAL_EVALUATION_H_

// Information-retrieval effectiveness metrics of §VI-A: P@n, AP/MAP, and
// the average document similarity (ADS).

#ifndef KPEF_EVAL_METRICS_H_
#define KPEF_EVAL_METRICS_H_

#include <cstddef>
#include <vector>

#include "graph/types.h"

namespace kpef {

/// P@n: fraction of the first n ranked experts present in the ground
/// truth (`truth` must be sorted ascending). Counts over exactly n slots:
/// returning fewer than n experts scores the missing slots as misses.
double PrecisionAtN(const std::vector<NodeId>& ranked,
                    const std::vector<NodeId>& truth, size_t n);

/// Average precision over the ranked list:
///   AP = sum_i P@i * rel(i) / min(|truth|, |ranked|),
/// the standard normalization (the paper's N is capped by the retrieval
/// depth; without the cap AP would be bounded by n/|truth| for the large
/// topic-level ground truths used here).
double AveragePrecision(const std::vector<NodeId>& ranked,
                        const std::vector<NodeId>& truth);

/// Mean of per-query APs; `rankings[q]` is the ranked experts of query q.
double MeanAveragePrecision(
    const std::vector<std::vector<NodeId>>& rankings,
    const std::vector<std::vector<NodeId>>& truths);

/// Reciprocal rank of the first relevant expert (0 when none is ranked).
double ReciprocalRank(const std::vector<NodeId>& ranked,
                      const std::vector<NodeId>& truth);

/// Recall@n: fraction of the ground truth found in the first n results.
double RecallAtN(const std::vector<NodeId>& ranked,
                 const std::vector<NodeId>& truth, size_t n);

/// nDCG@n with binary relevance: DCG over the first n results normalized
/// by the ideal DCG (min(n, |truth|) relevant results up front).
double NdcgAtN(const std::vector<NodeId>& ranked,
               const std::vector<NodeId>& truth, size_t n);

}  // namespace kpef

#endif  // KPEF_EVAL_METRICS_H_

#include "eval/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace kpef {

double PrecisionAtN(const std::vector<NodeId>& ranked,
                    const std::vector<NodeId>& truth, size_t n) {
  if (n == 0) return 0.0;
  size_t hits = 0;
  const size_t limit = std::min(n, ranked.size());
  for (size_t i = 0; i < limit; ++i) {
    if (std::binary_search(truth.begin(), truth.end(), ranked[i])) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(n);
}

double AveragePrecision(const std::vector<NodeId>& ranked,
                        const std::vector<NodeId>& truth) {
  if (ranked.empty() || truth.empty()) return 0.0;
  double sum = 0.0;
  size_t hits = 0;
  for (size_t i = 0; i < ranked.size(); ++i) {
    if (std::binary_search(truth.begin(), truth.end(), ranked[i])) {
      ++hits;
      sum += static_cast<double>(hits) / static_cast<double>(i + 1);
    }
  }
  const size_t denom = std::min(truth.size(), ranked.size());
  return sum / static_cast<double>(denom);
}

double ReciprocalRank(const std::vector<NodeId>& ranked,
                      const std::vector<NodeId>& truth) {
  for (size_t i = 0; i < ranked.size(); ++i) {
    if (std::binary_search(truth.begin(), truth.end(), ranked[i])) {
      return 1.0 / static_cast<double>(i + 1);
    }
  }
  return 0.0;
}

double RecallAtN(const std::vector<NodeId>& ranked,
                 const std::vector<NodeId>& truth, size_t n) {
  if (truth.empty()) return 0.0;
  size_t hits = 0;
  const size_t limit = std::min(n, ranked.size());
  for (size_t i = 0; i < limit; ++i) {
    if (std::binary_search(truth.begin(), truth.end(), ranked[i])) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(truth.size());
}

double NdcgAtN(const std::vector<NodeId>& ranked,
               const std::vector<NodeId>& truth, size_t n) {
  if (n == 0 || truth.empty()) return 0.0;
  double dcg = 0.0;
  const size_t limit = std::min(n, ranked.size());
  for (size_t i = 0; i < limit; ++i) {
    if (std::binary_search(truth.begin(), truth.end(), ranked[i])) {
      dcg += 1.0 / std::log2(static_cast<double>(i + 2));
    }
  }
  double ideal = 0.0;
  const size_t ideal_hits = std::min(n, truth.size());
  for (size_t i = 0; i < ideal_hits; ++i) {
    ideal += 1.0 / std::log2(static_cast<double>(i + 2));
  }
  return ideal > 0.0 ? dcg / ideal : 0.0;
}

double MeanAveragePrecision(const std::vector<std::vector<NodeId>>& rankings,
                            const std::vector<std::vector<NodeId>>& truths) {
  KPEF_CHECK(rankings.size() == truths.size());
  if (rankings.empty()) return 0.0;
  double total = 0.0;
  for (size_t q = 0; q < rankings.size(); ++q) {
    total += AveragePrecision(rankings[q], truths[q]);
  }
  return total / static_cast<double>(rankings.size());
}

}  // namespace kpef

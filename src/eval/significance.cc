#include "eval/significance.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace kpef {

BootstrapResult PairedBootstrap(const std::vector<double>& scores_a,
                                const std::vector<double>& scores_b,
                                size_t num_samples, uint64_t seed) {
  KPEF_CHECK(scores_a.size() == scores_b.size());
  BootstrapResult result;
  result.num_queries = scores_a.size();
  result.num_samples = num_samples;
  if (scores_a.empty() || num_samples == 0) return result;

  const size_t n = scores_a.size();
  std::vector<double> diffs(n);
  double mean = 0.0;
  for (size_t i = 0; i < n; ++i) {
    diffs[i] = scores_a[i] - scores_b[i];
    mean += diffs[i];
  }
  mean /= static_cast<double>(n);
  result.mean_difference = mean;

  Rng rng(seed);
  std::vector<double> resampled_means;
  resampled_means.reserve(num_samples);
  size_t sign_flips = 0;
  for (size_t s = 0; s < num_samples; ++s) {
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) total += diffs[rng.Uniform(n)];
    const double resampled = total / static_cast<double>(n);
    resampled_means.push_back(resampled);
    // Count resamples on the opposite side of zero from the observed mean
    // (including exactly zero as half a flip is unnecessary at this
    // granularity).
    if ((mean > 0 && resampled <= 0) || (mean < 0 && resampled >= 0) ||
        mean == 0) {
      ++sign_flips;
    }
  }
  result.p_value = std::min(
      1.0, 2.0 * static_cast<double>(sign_flips) /
               static_cast<double>(num_samples));
  std::sort(resampled_means.begin(), resampled_means.end());
  const size_t lo = static_cast<size_t>(0.025 * (num_samples - 1));
  const size_t hi = static_cast<size_t>(0.975 * (num_samples - 1));
  result.ci_low = resampled_means[lo];
  result.ci_high = resampled_means[hi];
  return result;
}

}  // namespace kpef

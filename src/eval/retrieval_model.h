// Common interface implemented by every expert-finding method (the paper's
// solution and all seven baselines), so the evaluation harness and benches
// treat them uniformly.

#ifndef KPEF_EVAL_RETRIEVAL_MODEL_H_
#define KPEF_EVAL_RETRIEVAL_MODEL_H_

#include <string>
#include <vector>

#include "ranking/expert_score.h"

namespace kpef {

/// A fitted expert-finding model: maps a query text to ranked experts.
class RetrievalModel {
 public:
  virtual ~RetrievalModel() = default;

  /// Method name as printed in result tables ("TFIDF", "GVNR-t", ...).
  virtual std::string name() const = 0;

  /// Returns the top-n experts for the query, best first.
  virtual std::vector<ExpertScore> FindExperts(const std::string& query_text,
                                               size_t n) = 0;
};

}  // namespace kpef

#endif  // KPEF_EVAL_RETRIEVAL_MODEL_H_

// Quickstart: build the full (k, P)-core expert-finding pipeline on a
// synthetic academic network and answer one free-text query.
//
//   ./quickstart [query text...]

#include <cstdio>
#include <string>

#include "common/logging.h"
#include "core/engine.h"
#include "data/corpus_builder.h"
#include "data/dataset.h"
#include "data/queries.h"

int main(int argc, char** argv) {
  using namespace kpef;
  SetLogLevel(LogLevel::kInfo);

  // 1. A heterogeneous academic graph (stand-in for DBLP/Aminer).
  DatasetConfig config = TinyProfile();
  config.num_papers = 800;
  config.num_authors = 500;
  config.num_topics = 16;
  const Dataset dataset = GenerateDataset(config);
  const DatasetStats stats = ComputeStats(dataset);
  std::printf("dataset: %zu papers, %zu experts, %zu venues, %zu topics, "
              "%zu relations\n",
              stats.papers, stats.experts, stats.venues, stats.topics,
              stats.relations);

  // 2. Tokenize paper labels L(p) = title + abstract.
  const Corpus corpus = BuildPaperCorpus(dataset);

  // 3. Offline pipeline: (k, P)-cores -> triples -> triplet fine-tuning ->
  //    embeddings -> PG-Index. Defaults: P-A-P ∩ P-T-P, k = 4, near
  //    negatives (the paper's best configuration).
  EngineConfig engine_config;
  engine_config.k = 3;
  engine_config.encoder.dim = 48;
  engine_config.top_m = 100;
  EngineBuildReport report;
  auto engine = ExpertFindingEngine::Build(&dataset, &corpus, engine_config,
                                           /*pretrained_tokens=*/nullptr,
                                           &report);
  if (!engine.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }
  std::printf("offline build: %.1fs total (%zu triples, %zu PG-Index "
              "edges)\n",
              report.total_seconds, report.sampling.triples.size(),
              report.index.edges_final);

  // 4. Online query. Default: reuse a random paper's text as the query,
  //    exactly like the paper's evaluation protocol.
  std::string query;
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) {
      if (!query.empty()) query += ' ';
      query += argv[i];
    }
  } else {
    const QuerySet queries = GenerateQueries(dataset, 1, 99);
    query = queries.queries[0].text;
    std::printf("query (from paper %d): %.60s...\n",
                queries.queries[0].query_paper, query.c_str());
  }

  const auto experts = (*engine)->FindExperts(query, 10);
  std::printf("\ntop-%zu experts:\n", experts.size());
  for (size_t i = 0; i < experts.size(); ++i) {
    std::printf("  %2zu. %-12s R(a) = %.4f\n", i + 1,
                dataset.graph.Label(experts[i].author).c_str(),
                experts[i].score);
  }
  return 0;
}

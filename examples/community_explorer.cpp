// Community explorer: inspect (k, P)-core communities directly.
//
// Walks one seed paper through the paper's §III machinery: strict cores
// under each meta-path and k, the seed-neighbor extension, the near-
// negative pool, the multi-meta-path intersection (§V), and the cost of
// Algorithm 1's pruning vs FastBCore vs the naive decomposition.
//
//   ./community_explorer

#include <cstdio>

#include "common/logging.h"
#include "common/timer.h"
#include "data/dataset.h"
#include "kpcore/fastbcore.h"
#include "kpcore/kpcore_search.h"
#include "kpcore/multi_path.h"
#include "kpcore/naive_search.h"
#include "metapath/meta_path.h"
#include "metapath/p_neighbor.h"

int main() {
  using namespace kpef;
  SetLogLevel(LogLevel::kWarning);

  DatasetConfig config = TinyProfile();
  config.num_papers = 1500;
  config.num_authors = 1000;
  config.num_topics = 24;
  const Dataset dataset = GenerateDataset(config);

  // Pick a well-connected seed: the first paper with >= 5 co-author
  // neighbors.
  const MetaPath pap = *MetaPath::Parse(dataset.graph.schema(), "P-A-P");
  PNeighborFinder finder(dataset.graph, pap);
  NodeId seed = dataset.Papers().front();
  for (NodeId p : dataset.Papers()) {
    if (finder.Degree(p) >= 5) {
      seed = p;
      break;
    }
  }
  std::printf("seed paper: node %d, co-author degree %zu\n", seed,
              finder.Degree(seed));

  // --- Communities per meta-path and k.
  std::printf("\n%-8s %-4s %-8s %-10s %-10s\n", "path", "k", "core",
              "extension", "near-neg");
  for (const char* path_text : {"P-A-P", "P-T-P", "P-P"}) {
    const MetaPath path = *MetaPath::Parse(dataset.graph.schema(), path_text);
    for (int32_t k : {2, 4, 6}) {
      const KPCoreCommunity c = KPCoreSearch(dataset.graph, path, seed, k);
      std::printf("%-8s %-4d %-8zu %-10zu %-10zu\n", path_text, k,
                  c.core.size(), c.extension.size(),
                  c.near_negatives.size());
    }
  }

  // --- Multi-meta-path intersection (§V).
  std::printf("\nmeta-path intersections at k = 4:\n");
  const MetaPath ptp = *MetaPath::Parse(dataset.graph.schema(), "P-T-P");
  const MetaPath pp = *MetaPath::Parse(dataset.graph.schema(), "P-P");
  struct Combo {
    const char* name;
    std::vector<MetaPath> paths;
  };
  const std::vector<Combo> combos = {
      {"A", {pap}},          {"AT", {pap, ptp}},
      {"AC", {pap, pp}},     {"CT", {pp, ptp}},
      {"ACT", {pap, pp, ptp}}};
  for (const Combo& combo : combos) {
    const KPCoreCommunity c =
        MultiPathKPCoreSearch(dataset.graph, combo.paths, seed, 4);
    std::printf("  %-4s core=%-5zu members=%zu\n", combo.name, c.core.size(),
                c.Members().size());
  }

  // --- Cost comparison: Algorithm 1 vs FastBCore vs naive.
  std::printf("\ncore-search cost at k = 4 (P-A-P), same strict core:\n");
  Timer timer;
  const KPCoreCommunity ours = KPCoreSearch(dataset.graph, pap, seed, 4);
  const double ours_ms = timer.ElapsedMillis();
  timer.Restart();
  const KPCoreCommunity fast = FastBCoreSearch(dataset.graph, pap, seed, 4);
  const double fast_ms = timer.ElapsedMillis();
  timer.Restart();
  const KPCoreCommunity naive = NaiveKPCoreSearch(dataset.graph, pap, seed, 4);
  const double naive_ms = timer.ElapsedMillis();
  std::printf("  %-12s %8s %12s %10s\n", "method", "ms", "edges", "expanded");
  std::printf("  %-12s %8.2f %12llu %10zu\n", "Algorithm 1", ours_ms,
              static_cast<unsigned long long>(ours.edges_scanned),
              ours.papers_expanded);
  std::printf("  %-12s %8.2f %12llu %10zu\n", "FastBCore", fast_ms,
              static_cast<unsigned long long>(fast.edges_scanned),
              fast.papers_expanded);
  std::printf("  %-12s %8.2f %12s %10zu\n", "Naive", naive_ms, "(all)",
              naive.papers_expanded);
  std::printf("  cores equal: %s\n",
              (ours.core == fast.core && fast.core == naive.core) ? "yes"
                                                                  : "NO");
  return 0;
}

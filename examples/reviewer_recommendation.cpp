// Reviewer recommendation: the paper's flagship application (§I).
//
// Given a submission's title+abstract, recommend reviewers: find the
// top-n experts whose work is semantically and structurally closest to
// the submission, then filter conflicts of interest (recent co-authors of
// the submitting authors).
//
//   ./reviewer_recommendation

#include <algorithm>
#include <cstdio>
#include <set>

#include "common/logging.h"
#include "core/engine.h"
#include "core/explain.h"
#include "data/corpus_builder.h"
#include "data/dataset.h"
#include "data/queries.h"
#include "metapath/meta_path.h"
#include "metapath/p_neighbor.h"

int main() {
  using namespace kpef;
  SetLogLevel(LogLevel::kWarning);

  DatasetConfig config = TinyProfile();
  config.num_papers = 1000;
  config.num_authors = 700;
  config.num_topics = 20;
  const Dataset dataset = GenerateDataset(config);
  const Corpus corpus = BuildPaperCorpus(dataset);

  EngineConfig engine_config;
  engine_config.k = 3;
  engine_config.encoder.dim = 48;
  engine_config.top_m = 120;
  auto engine =
      ExpertFindingEngine::Build(&dataset, &corpus, engine_config);
  if (!engine.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }

  // Treat a held-out paper as the incoming submission; its authors are
  // the submitting authors (conflict sources).
  const QuerySet queries = GenerateQueries(dataset, 1, 4242);
  const Query& submission = queries.queries[0];
  const auto submitting_authors =
      dataset.graph.Neighbors(submission.query_paper, dataset.ids.write);
  std::printf("submission: %.70s...\n",
              submission.text.c_str());
  std::printf("submitting authors:");
  for (NodeId a : submitting_authors) {
    std::printf(" %s", dataset.graph.Label(a).c_str());
  }
  std::printf("\n\n");

  // Conflict set: the submitting authors plus anyone who co-authored a
  // paper with them (1 hop through A-P-A).
  std::set<NodeId> conflicts(submitting_authors.begin(),
                             submitting_authors.end());
  for (NodeId author : submitting_authors) {
    for (NodeId paper : dataset.graph.Neighbors(author, dataset.ids.write)) {
      for (NodeId coauthor :
           dataset.graph.Neighbors(paper, dataset.ids.write)) {
        conflicts.insert(coauthor);
      }
    }
  }
  std::printf("conflict-of-interest set: %zu researchers\n\n",
              conflicts.size());

  // Over-fetch experts, then drop conflicts.
  const size_t panel_size = 5;
  const auto candidates = (*engine)->FindExperts(submission.text, 30);
  std::printf("recommended review panel:\n");
  size_t listed = 0;
  for (const ExpertScore& e : candidates) {
    if (conflicts.count(e.author)) continue;
    const ExpertProfile profile = BuildExpertProfile(dataset, e.author);
    std::printf("  %zu. %-12s R(a)=%.4f  (%zu papers, %zu co-authors, %zu "
                "venues)\n",
                ++listed, dataset.graph.Label(e.author).c_str(), e.score,
                profile.num_papers, profile.num_coauthors,
                profile.num_venues);
    // Expertise evidence: the strongest matched papers behind the score.
    const ExpertExplanation why =
        ExplainExpert(**engine, submission.text, e.author);
    for (size_t i = 0; i < std::min<size_t>(2, why.evidence.size()); ++i) {
      const ExpertEvidence& ev = why.evidence[i];
      std::printf("       evidence: retrieved paper #%zu (author %zu/%zu, "
                  "score share %.4f)\n",
                  ev.paper_rank, ev.author_rank, ev.num_authors,
                  ev.score_share);
    }
    if (listed >= panel_size) break;
  }
  if (listed < panel_size) {
    std::printf("  (only %zu conflict-free reviewers in top-30; widen the "
                "candidate pool)\n",
                listed);
  }
  return 0;
}

// kpef_cli: end-to-end command-line driver for the library, demonstrating
// the offline-build / online-serve split with persisted artifacts.
//
//   kpef_cli generate --out graph.kg [--profile aminer|dblp|acm|tiny]
//                     [--scale 0.5]
//   kpef_cli stats    --graph graph.kg
//   kpef_cli texts    --graph graph.kg [--count 1] [--skip 0]
//   kpef_cli build    --graph graph.kg --model-dir dir [--k 4]
//                     [--train-threads N] [--train-deterministic]
//   kpef_cli query    --graph graph.kg --model-dir dir --text "..."
//                     [--n 10]
//
// `--train-threads N` fine-tunes the encoder with N HogWild workers
// (0 = all cores); add `--train-deterministic` for the slower schedule
// whose trained parameters are byte-identical for any thread count.
//
// `build` persists the fine-tuned encoder, the paper embeddings, and the
// PG-Index; `query` reloads them and serves queries without retraining.
//
// Global flags (any command):
//   --metrics-out <path>   dump the metrics registry after the command
//                          (.prom/.txt -> Prometheus text, else JSON)
//   --trace-out <path>     enable span tracing, dump flame-style JSON

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>

#include "ann/pg_index.h"
#include "common/logging.h"
#include "common/timer.h"
#include "core/engine.h"
#include "data/corpus_builder.h"
#include "data/dataset.h"
#include "embed/model_io.h"
#include "graph/graph_io.h"
#include "obs/export.h"
#include "obs/pipeline_metrics.h"
#include "obs/trace.h"
#include "ranking/top_n_finder.h"

namespace {

using namespace kpef;

std::map<std::string, std::string> ParseFlags(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 2; i < argc;) {
    std::string key = argv[i];
    if (key.rfind("--", 0) == 0) key = key.substr(2);
    // A flag followed by another --flag (or nothing) is a bare boolean
    // switch, e.g. --train-deterministic.
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      flags[key] = argv[i + 1];
      i += 2;
    } else {
      flags[key] = "1";
      i += 1;
    }
  }
  return flags;
}

std::string FlagOr(const std::map<std::string, std::string>& flags,
                   const std::string& key, const std::string& fallback) {
  auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

DatasetConfig ProfileByName(const std::string& name) {
  if (name == "dblp") return DblpProfile();
  if (name == "acm") return AcmProfile();
  if (name == "tiny") return TinyProfile();
  return AminerProfile();
}

int CmdGenerate(const std::map<std::string, std::string>& flags) {
  const std::string out = FlagOr(flags, "out", "graph.kg");
  DatasetConfig config = ProfileByName(FlagOr(flags, "profile", "aminer"));
  const double scale = std::atof(FlagOr(flags, "scale", "1.0").c_str());
  if (scale > 0 && scale != 1.0) config = config.ScaledCopy(scale, "");
  const Dataset dataset = GenerateDataset(config);
  const Status saved = SaveGraph(dataset.graph, out);
  if (!saved.ok()) return Fail(saved);
  const DatasetStats stats = ComputeStats(dataset);
  std::printf("wrote %s: %zu papers, %zu experts, %zu venues, %zu topics, "
              "%zu relations\n",
              out.c_str(), stats.papers, stats.experts, stats.venues,
              stats.topics, stats.relations);
  return 0;
}

StatusOr<Dataset> LoadDataset(const std::map<std::string, std::string>& flags) {
  const std::string path = FlagOr(flags, "graph", "graph.kg");
  KPEF_ASSIGN_OR_RETURN(HeteroGraph graph, LoadGraph(path));
  return DatasetFromGraph(std::move(graph), path);
}

int CmdStats(const std::map<std::string, std::string>& flags) {
  auto dataset = LoadDataset(flags);
  if (!dataset.ok()) return Fail(dataset.status());
  const DatasetStats stats = ComputeStats(*dataset);
  std::printf("papers=%zu experts=%zu venues=%zu topics=%zu relations=%zu\n",
              stats.papers, stats.experts, stats.venues, stats.topics,
              stats.relations);
  return 0;
}

int CmdTexts(const std::map<std::string, std::string>& flags) {
  // Print paper texts from a graph, one per line. Scripted clients (the
  // CI ingest smoke) use this to craft in-vocabulary ingest payloads:
  // the serving encoder's vocabulary is frozen at build time, so a
  // query can only retrieve an ingested paper whose tokens overlap the
  // offline corpus.
  auto dataset = LoadDataset(flags);
  if (!dataset.ok()) return Fail(dataset.status());
  const size_t count = static_cast<size_t>(
      std::atoi(FlagOr(flags, "count", "1").c_str()));
  const size_t skip = static_cast<size_t>(
      std::atoi(FlagOr(flags, "skip", "0").c_str()));
  const auto& papers = dataset->Papers();
  for (size_t i = skip; i < papers.size() && i < skip + count; ++i) {
    std::printf("%s\n", dataset->graph.Label(papers[i]).c_str());
  }
  return 0;
}

int CmdBuild(const std::map<std::string, std::string>& flags) {
  auto dataset = LoadDataset(flags);
  if (!dataset.ok()) return Fail(dataset.status());
  const std::string model_dir = FlagOr(flags, "model-dir", "model");
  const Corpus corpus = BuildPaperCorpus(*dataset);

  EngineConfig config;
  config.k = std::atoi(FlagOr(flags, "k", "4").c_str());
  config.top_m =
      std::max<size_t>(50, dataset->Papers().size() / 10);
  config.trainer.num_threads = static_cast<size_t>(
      std::atoi(FlagOr(flags, "train-threads", "1").c_str()));
  config.trainer.deterministic =
      FlagOr(flags, "train-deterministic", "0") != "0";
  Timer timer;
  EngineBuildReport report;
  auto engine = ExpertFindingEngine::Build(&*dataset, &corpus, config,
                                           nullptr, &report);
  if (!engine.ok()) return Fail(engine.status());
  std::printf("built pipeline in %.1fs (%zu triples, %zu index edges)\n",
              timer.ElapsedSeconds(), report.sampling.triples.size(),
              report.index.edges_final);
  std::printf("trained %zu triples at %.0f triples/s (%zu worker%s, %s)\n",
              report.training.num_triples, report.training.triples_per_sec,
              report.training.workers, report.training.workers == 1 ? "" : "s",
              report.training.deterministic ? "deterministic" : "hogwild");

  Status s = SaveEncoder((*engine)->encoder(), model_dir + "/encoder.bin");
  if (!s.ok()) return Fail(s);
  s = SaveMatrix((*engine)->embeddings(), model_dir + "/embeddings.bin");
  if (!s.ok()) return Fail(s);
  s = (*engine)->index()->Save(model_dir + "/pgindex.bin");
  if (!s.ok()) return Fail(s);
  std::printf("saved encoder.bin, embeddings.bin, pgindex.bin under %s/\n",
              model_dir.c_str());
  return 0;
}

int CmdQuery(const std::map<std::string, std::string>& flags) {
  auto dataset = LoadDataset(flags);
  if (!dataset.ok()) return Fail(dataset.status());
  const std::string model_dir = FlagOr(flags, "model-dir", "model");
  const std::string text = FlagOr(flags, "text", "");
  const size_t n =
      static_cast<size_t>(std::atoi(FlagOr(flags, "n", "10").c_str()));
  if (text.empty()) {
    std::fprintf(stderr, "query requires --text\n");
    return 1;
  }
  const Corpus corpus = BuildPaperCorpus(*dataset);
  auto encoder = LoadEncoder(model_dir + "/encoder.bin");
  if (!encoder.ok()) return Fail(encoder.status());
  auto index = PGIndex::Load(model_dir + "/pgindex.bin");
  if (!index.ok()) return Fail(index.status());

  Timer timer;
  const std::vector<float> query_vec =
      encoder->Encode(corpus.EncodeQuery(text));
  const size_t m = std::max<size_t>(50, dataset->Papers().size() / 10);
  const auto neighbors = index->Search(query_vec, m, m);
  std::vector<NodeId> top_papers;
  top_papers.reserve(neighbors.size());
  for (const Neighbor& nb : neighbors) {
    top_papers.push_back(dataset->Papers()[nb.id]);
  }
  const RankedLists lists =
      BuildRankedLists(dataset->graph, dataset->ids.write, top_papers);
  const auto experts = ThresholdTopN(lists, n);
  std::printf("top-%zu experts (%.2f ms):\n", experts.size(),
              timer.ElapsedMillis());
  for (size_t i = 0; i < experts.size(); ++i) {
    std::printf("  %2zu. %-16s R(a)=%.4f\n", i + 1,
                dataset->graph.Label(experts[i].author).c_str(),
                experts[i].score);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  kpef::SetLogLevel(kpef::LogLevel::kWarning);
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: kpef_cli <generate|stats|texts|build|query> [--flag "
                 "value]...\n");
    return 1;
  }
  const std::string command = argv[1];
  const auto flags = ParseFlags(argc, argv);
  const std::string metrics_out = FlagOr(flags, "metrics-out", "");
  const std::string trace_out = FlagOr(flags, "trace-out", "");
  if (!metrics_out.empty()) {
    // Pre-register the canonical schema so the export always carries the
    // full set of pipeline keys, even for commands that exercise only a
    // few stages.
    kpef::obs::WarmPipelineMetrics();
  }
  if (!trace_out.empty()) kpef::obs::Tracer::Global().SetEnabled(true);

  int rc = 1;
  if (command == "generate") {
    rc = CmdGenerate(flags);
  } else if (command == "stats") {
    rc = CmdStats(flags);
  } else if (command == "texts") {
    rc = CmdTexts(flags);
  } else if (command == "build") {
    rc = CmdBuild(flags);
  } else if (command == "query") {
    rc = CmdQuery(flags);
  } else {
    std::fprintf(stderr, "unknown command \"%s\"\n", command.c_str());
    return 1;
  }
  if (rc == 0 && !metrics_out.empty()) {
    const kpef::Status s = kpef::obs::WriteMetricsFile(metrics_out);
    if (!s.ok()) return Fail(s);
    std::printf("wrote metrics to %s\n", metrics_out.c_str());
  }
  if (rc == 0 && !trace_out.empty()) {
    std::ofstream out(trace_out, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "error: cannot open %s\n", trace_out.c_str());
      return 1;
    }
    out << kpef::obs::Tracer::Global().DumpJson();
    std::printf("wrote %zu trace spans to %s\n",
                kpef::obs::Tracer::Global().NumSpans(), trace_out.c_str());
  }
  return rc;
}

#!/usr/bin/env python3
"""Validate a Prometheus text exposition scraped from kpef_serve.

Checks the things a real scraper would choke on:
  * line grammar: every line is # HELP, # TYPE, or `name[{labels}] value`
  * every sample belongs to a family announced by a # TYPE line
  * histogram buckets are cumulative (monotone non-decreasing) and the
    +Inf bucket equals <family>_count
  * the serve latency quantile summaries are exported
  * process self-metrics carry live values (RSS > 0, fds > 0)

Usage: check_exposition.py metrics.prom
"""
import re
import sys

SAMPLE_RE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{(?P<labels>[^}]*)\})?'
    r' (?P<value>[-+]?(?:[0-9.eE+-]+|inf|nan))$'
)
LABEL_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\["\\n])*"$')


def fail(msg):
    print(f'exposition FAIL: {msg}', file=sys.stderr)
    sys.exit(1)


def main(path):
    types = {}     # family name -> counter|gauge|histogram
    helps = set()
    samples = []   # (name, labels-dict, value)
    with open(path) as fh:
        for lineno, raw in enumerate(fh, 1):
            line = raw.rstrip('\n')
            if not line:
                continue
            if line.startswith('# HELP '):
                helps.add(line.split(' ', 3)[2])
                continue
            if line.startswith('# TYPE '):
                parts = line.split(' ')
                if len(parts) != 4 or parts[3] not in (
                        'counter', 'gauge', 'histogram', 'summary'):
                    fail(f'line {lineno}: bad TYPE line: {line!r}')
                types[parts[2]] = parts[3]
                continue
            if line.startswith('#'):
                fail(f'line {lineno}: unknown comment form: {line!r}')
            m = SAMPLE_RE.match(line)
            if not m:
                fail(f'line {lineno}: unparseable sample: {line!r}')
            labels = {}
            if m.group('labels'):
                for pair in re.split(r',(?=[a-zA-Z_])', m.group('labels')):
                    if not LABEL_RE.match(pair):
                        fail(f'line {lineno}: bad label pair {pair!r}')
                    key, value = pair.split('=', 1)
                    labels[key] = value[1:-1]
            samples.append((m.group('name'), labels, float(m.group('value'))))

    def family(sample_name):
        for suffix in ('_bucket', '_sum', '_count'):
            if sample_name.endswith(suffix) and \
                    sample_name[: -len(suffix)] in types:
                return sample_name[: -len(suffix)]
        return sample_name

    by_name = {}
    for name, labels, value in samples:
        fam = family(name)
        if fam not in types:
            fail(f'sample {name!r} has no # TYPE announcement')
        # HELP is optional in the exposition format; the serving and
        # process families are curated and must carry one.
        if fam.startswith(('serve_', 'process_')) and fam not in helps:
            fail(f'family {fam!r} has no # HELP line')
        by_name.setdefault(name, []).append((labels, value))

    # Histogram invariants.
    histograms = [f for f, t in types.items() if t == 'histogram']
    if not histograms:
        fail('no histogram families exported')
    for fam in histograms:
        buckets = by_name.get(fam + '_bucket', [])
        if not buckets:
            fail(f'histogram {fam} exports no buckets')
        def le_key(entry):
            le = entry[0].get('le', '')
            return float('inf') if le == '+Inf' else float(le)
        buckets.sort(key=le_key)
        previous = -1.0
        for labels, value in buckets:
            if 'le' not in labels:
                fail(f'{fam}_bucket sample missing le label')
            if value < previous:
                fail(f'{fam} buckets not cumulative at le={labels["le"]}: '
                     f'{value} < {previous}')
            previous = value
        if buckets[-1][0].get('le') != '+Inf':
            fail(f'{fam} missing +Inf bucket')
        counts = by_name.get(fam + '_count')
        if not counts or counts[0][1] != buckets[-1][1]:
            fail(f'{fam}: +Inf bucket != _count')

    # Serve latency quantile summaries (PR-6 satellite).
    for fam in ('serve_e2e_ms_quantile', 'serve_queue_wait_ms_quantile',
                'serve_batch_size_quantile'):
        rows = by_name.get(fam)
        if not rows:
            fail(f'missing quantile family {fam}')
        quantiles = {labels.get('quantile') for labels, _ in rows}
        if not {'0.5', '0.95', '0.99'} <= quantiles:
            fail(f'{fam} missing quantile labels, got {sorted(quantiles)}')

    # Process self-metrics must carry live values when sampled on scrape.
    def single(name):
        rows = by_name.get(name)
        if not rows:
            fail(f'missing gauge {name}')
        return rows[0][1]

    if single('process_rss_bytes') <= 0:
        fail('process_rss_bytes not positive')
    if single('process_open_fds') <= 0:
        fail('process_open_fds not positive')
    if single('process_uptime_seconds') < 0:
        fail('process_uptime_seconds negative')
    if single('serve_requests') <= 0:
        fail('serve_requests is zero after traffic')

    print(f'exposition OK: {len(samples)} samples, '
          f'{len(types)} families, {len(histograms)} histograms')


if __name__ == '__main__':
    main(sys.argv[1])
